package check

import (
	"reflect"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/cg"
	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
)

// fastCG keeps the baseline's cycle enumeration from dominating test time:
// trials that blow past it count as CGSkipped, which is not a failure.
func fastCG() *cg.Config {
	return &cg.Config{MaxCycles: 20_000, SampleCycles: 10_000, TimeBudget: 2 * time.Second}
}

// TestGenerateDeterministic: the replay contract — one config, one epoch.
func TestGenerateDeterministic(t *testing.T) {
	for _, p := range Profiles() {
		gen := p.Gen
		gen.Seed = 42
		gen.Txs = 120
		gen.Keys = 24
		snapA, simsA := Generate(gen)
		snapB, simsB := Generate(gen)
		if !reflect.DeepEqual(snapA, snapB) {
			t.Fatalf("%s: snapshots differ across regenerations", p.Name)
		}
		if !reflect.DeepEqual(simsA, simsB) {
			t.Fatalf("%s: sims differ across regenerations", p.Name)
		}
	}
}

// TestGenerateWellFormed: every shape produces sims obeying the SimResult
// contract (dense ids, per-set dedup, by-key order, reads matching the
// snapshot) — the preconditions the schedulers assume.
func TestGenerateWellFormed(t *testing.T) {
	for _, p := range Profiles() {
		gen := p.Gen
		gen.Seed = 7
		gen.Txs = 150
		gen.Keys = 20
		snapshot, sims := Generate(gen)
		if len(sims) != gen.Txs {
			t.Fatalf("%s: got %d sims, want %d", p.Name, len(sims), gen.Txs)
		}
		for i, sim := range sims {
			if sim.Tx.ID != types.TxID(i) {
				t.Fatalf("%s: sim %d has id %d", p.Name, i, sim.Tx.ID)
			}
			for j, r := range sim.Reads {
				if j > 0 && !sim.Reads[j-1].Key.Less(r.Key) {
					t.Fatalf("%s: tx %d reads out of order", p.Name, i)
				}
				if got := snapshot[r.Key]; !reflect.DeepEqual(got, r.Value) {
					t.Fatalf("%s: tx %d read value disagrees with snapshot", p.Name, i)
				}
			}
			for j := 1; j < len(sim.Writes); j++ {
				if !sim.Writes[j-1].Key.Less(sim.Writes[j].Key) {
					t.Fatalf("%s: tx %d writes out of order", p.Name, i)
				}
			}
		}
	}
}

// TestGenerateShapesHaveCharacter: the targeted shapes actually produce the
// structures they exist for.
func TestGenerateShapesHaveCharacter(t *testing.T) {
	_, sims := Generate(GenConfig{Seed: 3, Txs: 200, Keys: 32, Shape: ShapeMultiWrite})
	multi := 0
	for _, sim := range sims {
		if len(sim.Reads) == 0 && len(sim.Writes) >= 2 {
			multi++
		}
	}
	if multi < 100 {
		t.Fatalf("multi-write shape produced only %d rescue-eligible txs", multi)
	}

	hot, simsHot := 0, 0
	_, hotSims := Generate(GenConfig{Seed: 3, Txs: 200, Keys: 32, Shape: ShapeSingleHotKey, ReadRatio: 0.5})
	hotKey := types.KeyFromUint64(0)
	for _, sim := range hotSims {
		simsHot++
		for _, k := range simKeys(sim) {
			if k == hotKey {
				hot++
				break
			}
		}
	}
	if hot*2 < simsHot {
		t.Fatalf("single-hot-key shape: only %d/%d txs touch the hot key", hot, simsHot)
	}

	// Cycle-heavy epochs must force Algorithm 1 off its acyclic fast path;
	// detectable as a dependency graph with no valid topological order.
	_, cycSims := Generate(GenConfig{Seed: 3, Txs: 60, Keys: 12, Shape: ShapeCycleHeavy})
	acg := core.BuildACG(cycSims)
	if _, ok := acg.Deps.TopoSort(); ok {
		t.Fatal("cycle-heavy shape produced an acyclic address-dependency graph")
	}
}

// TestSweepClean: the production scheduler passes the full battery. Epochs
// are sized above the 128-tx threshold so the parallel builder and sorter
// really run against the sequential reference.
func TestSweepClean(t *testing.T) {
	rep := Run(RunConfig{
		StartSeed: 1,
		Seeds:     3,
		Txs:       160,
		Keys:      32,
		CG:        fastCG(),
	})
	if rep.Failed() {
		t.Fatalf("clean sweep failed:\n%s", rep.Summary())
	}
	if rep.Trials != 3*len(Profiles()) {
		t.Fatalf("ran %d trials, want %d", rep.Trials, 3*len(Profiles()))
	}
}

// TestHarnessCatchesFlippedRescue is the teeth test the harness exists for:
// flipping the §IV-D rescue comparison inside the scheduler must make the
// differential driver report a seed-replayable oracle violation. The rescue
// only matters in the paper-literal configuration (safety sweep off — with
// the sweep on, a broken rescue is silently repaired into extra aborts), so
// both runs use SkipSafetySweep; the no-fault control run isolates the
// injected bug from the sweepless heuristic's own rare violations.
func TestHarnessCatchesFlippedRescue(t *testing.T) {
	base := core.Config{Reorder: true, Heuristic: core.RankMaxOutDegree, SkipSafetySweep: true}
	faulty := base
	faulty.InjectFault = core.FaultFlipRescue

	var fail *Failure
	for seed := int64(1); seed <= 120 && fail == nil; seed++ {
		gen := GenConfig{Seed: seed, Txs: 160, Keys: 16, Shape: ShapeMixed, ReadRatio: 0.3, MultiWriteProb: 0.3}
		control := RunTrial(TrialConfig{Gen: gen, Core: &base, SkipCG: true, SkipMinimize: true})
		if control.Failure != nil {
			continue // heuristic-only violation: can't attribute to the fault
		}
		res := RunTrial(TrialConfig{Gen: gen, Core: &faulty, SkipCG: true})
		if res.Failure != nil {
			fail = res.Failure
		}
	}
	if fail == nil {
		t.Fatal("flipped rescue comparison survived 120 seeds — the oracle has no teeth")
	}
	if fail.Kind != FailOracle && fail.Kind != FailParallelism {
		t.Fatalf("unexpected failure kind %s: %s", fail.Kind, fail.Error())
	}
	if len(fail.Minimized) == 0 || len(fail.Minimized) >= fail.Gen.Txs {
		t.Fatalf("minimizer did not shrink the failure: %d of %d txs", len(fail.Minimized), fail.Gen.Txs)
	}

	// Seed-replayability: rerunning the exact failing config must
	// reproduce the same failure, including the minimized subset.
	again := RunTrial(TrialConfig{Gen: fail.Gen, Core: &faulty, SkipCG: true})
	if again.Failure == nil {
		t.Fatalf("seed %d did not replay the failure", fail.Gen.Seed)
	}
	if again.Failure.Kind != fail.Kind || again.Failure.Detail != fail.Detail {
		t.Fatalf("replay diverged: %s vs %s", again.Failure.Error(), fail.Error())
	}
	if !reflect.DeepEqual(again.Failure.Minimized, fail.Minimized) {
		t.Fatalf("replay minimized differently: %v vs %v", again.Failure.Minimized, fail.Minimized)
	}
}

// TestHarnessCatchesDroppedFinish: leaking the seq-0 sentinel for stateless
// transactions must trip the oracle's structural check on any epoch that
// contains a stateless transaction.
func TestHarnessCatchesDroppedFinish(t *testing.T) {
	cc := core.DefaultConfig()
	cc.InjectFault = core.FaultDropStatelessSeq
	res := RunTrial(TrialConfig{
		Gen:  GenConfig{Seed: 5, Txs: 160, Keys: 32, Shape: ShapeMixed, StatelessProb: 0.3, ReadRatio: 0.5},
		Core: &cc,
		CG:   fastCG(),
	})
	if res.Failure == nil {
		t.Fatal("dropped finish pass went undetected")
	}
	if res.Failure.Kind != FailOracle {
		t.Fatalf("unexpected failure kind %s: %s", res.Failure.Kind, res.Failure.Error())
	}
}

// TestHarnessCatchesMutatedSchedule exercises the Mutate fault port: a
// post-hoc seq collision between two committed writers of one key — the
// shape of bug a dropped tie-break would produce — must be caught.
func TestHarnessCatchesMutatedSchedule(t *testing.T) {
	res := RunTrial(TrialConfig{
		Gen: GenConfig{Seed: 9, Txs: 160, Keys: 16, Shape: ShapeZipf, Skew: 0.9, ReadRatio: 0.4},
		CG:  fastCG(),
		Mutate: func(sched *types.Schedule, sims []*types.SimResult) {
			// Give the second committed writer of some key its first
			// committed writer's number.
			writers := make(map[types.Key]types.TxID)
			for _, sim := range sims {
				if !sched.IsCommitted(sim.Tx.ID) {
					continue
				}
				for _, w := range sim.Writes {
					if first, ok := writers[w.Key]; ok {
						sched.Seqs[sim.Tx.ID] = sched.Seqs[first]
						return
					}
					writers[w.Key] = sim.Tx.ID
				}
			}
		},
	})
	if res.Failure == nil {
		t.Fatal("mutated schedule went undetected")
	}
	if res.Failure.Kind != FailOracle {
		t.Fatalf("unexpected failure kind %s: %s", res.Failure.Kind, res.Failure.Error())
	}
}

// TestMinimize covers the harness's own minimizer against predicates with
// known minimal cores.
func TestMinimize(t *testing.T) {
	contains := func(idx []int, want ...int) bool {
		have := make(map[int]bool, len(idx))
		for _, i := range idx {
			have[i] = true
		}
		for _, w := range want {
			if !have[w] {
				return false
			}
		}
		return true
	}

	t.Run("pair core", func(t *testing.T) {
		got := Minimize(100, func(idx []int) bool { return contains(idx, 13, 77) })
		if !reflect.DeepEqual(got, []int{13, 77}) {
			t.Fatalf("got %v, want [13 77]", got)
		}
	})
	t.Run("singleton", func(t *testing.T) {
		got := Minimize(64, func(idx []int) bool { return contains(idx, 5) })
		if !reflect.DeepEqual(got, []int{5}) {
			t.Fatalf("got %v, want [5]", got)
		}
	})
	t.Run("size threshold", func(t *testing.T) {
		got := Minimize(50, func(idx []int) bool { return len(idx) >= 10 })
		if len(got) != 10 {
			t.Fatalf("got %d indices, want 10", len(got))
		}
	})
	t.Run("tiny inputs", func(t *testing.T) {
		if got := Minimize(1, func(idx []int) bool { return true }); !reflect.DeepEqual(got, []int{0}) {
			t.Fatalf("n=1: got %v", got)
		}
		if got := Minimize(0, func(idx []int) bool { return true }); len(got) != 0 {
			t.Fatalf("n=0: got %v", got)
		}
	})
}

// TestProfileByName: resolution and the error listing.
func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("cycle-heavy")
	if err != nil || p.Gen.Shape != ShapeCycleHeavy {
		t.Fatalf("cycle-heavy: %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile resolved")
	}
}

// TestRenumberLeavesOriginalsIntact: minimization probes must not corrupt
// the epoch they are shrinking.
func TestRenumberLeavesOriginalsIntact(t *testing.T) {
	_, sims := Generate(GenConfig{Seed: 2, Txs: 20, Keys: 8})
	sub := renumber(sims, []int{4, 9, 17})
	if sub[0].Tx.ID != 0 || sub[1].Tx.ID != 1 || sub[2].Tx.ID != 2 {
		t.Fatalf("renumbered ids wrong: %d %d %d", sub[0].Tx.ID, sub[1].Tx.ID, sub[2].Tx.ID)
	}
	if sims[4].Tx.ID != 4 || sims[9].Tx.ID != 9 || sims[17].Tx.ID != 17 {
		t.Fatal("renumber mutated the original epoch")
	}
}
