package check

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/types"
)

// TestExecDiffCleanSweep: the MVCC and snapshot executors agree across
// every generator shape over multiple evolving epochs — the executor-level
// form of the PR's differential acceptance criterion. The full-depth sweep
// runs in CI (`nezha-check execdiff`); this keeps a small always-on slice
// in `go test`.
func TestExecDiffCleanSweep(t *testing.T) {
	rep := RunExecDiffSweep(ExecDiffRunConfig{Seeds: 2, Epochs: 3, Txs: 128, Keys: 32})
	if rep.Failed() {
		t.Fatal(rep.Summary())
	}
	if rep.Trials != 2*len(Profiles()) {
		t.Fatalf("trials = %d, want %d", rep.Trials, 2*len(Profiles()))
	}
}

// TestExecDiffDeterministic: the same config replays to the same verdict —
// the sweep is seed-replayable like the scheduler differential.
func TestExecDiffDeterministic(t *testing.T) {
	cfg := ExecDiffConfig{Gen: GenConfig{Shape: ShapeZipf, Skew: 0.9, ReadRatio: 0.5, Seed: 42, Txs: 96, Keys: 16}, Epochs: 3}
	if f := RunExecDiff(cfg); f != nil {
		t.Fatal(f)
	}
	if f := RunExecDiff(cfg); f != nil {
		t.Fatal(f)
	}
}

// TestExecDiffCatchesDivergence is the meta-test: a deliberately corrupted
// executor (one stray write slipped into its state between genesis and the
// first epoch) must be caught as a read divergence — proving the harness
// detects exactly the class of bug it exists for.
func TestExecDiffCatchesDivergence(t *testing.T) {
	cfg := ExecDiffConfig{Gen: GenConfig{Shape: ShapeUniform, ReadRatio: 0.9, Seed: 7, Txs: 64, Keys: 8}}.withDefaults()
	mvccEx, snapEx, err := newExecutors(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the snapshot executor's copy of a key every template reads.
	if _, err := snapEx.db.Commit([]types.WriteEntry{{Key: types.KeyFromUint64(0), Value: []byte("corrupt")}}); err != nil {
		t.Fatal(err)
	}
	_, templates := Generate(cfg.Gen)
	a, err := mvccEx.execEpoch(templates, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := snapEx.execEpoch(templates, 0)
	if err != nil {
		t.Fatal(err)
	}
	fail := diffSims(a, b, 0)
	if fail == nil {
		t.Fatal("corrupted executor not detected")
	}
	if fail.Kind != FailExecDiff {
		t.Fatalf("kind = %s, want %s", fail.Kind, FailExecDiff)
	}
}
