package check

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/nezha-dag/nezha/internal/cg"
)

// Profile is a named adversarial workload family. The Gen field carries the
// shape parameters; Seed, Txs, and Keys are filled per trial by Run.
type Profile struct {
	Name string
	Gen  GenConfig
}

// Profiles returns the harness's standard battery, ordered from benign to
// degenerate. "mixed" is last so a sweep that dies early still covered the
// targeted shapes.
func Profiles() []Profile {
	return []Profile{
		{"uniform", GenConfig{Shape: ShapeUniform, ReadRatio: 0.5}},
		{"zipf-hot", GenConfig{Shape: ShapeZipf, Skew: 0.9, ReadRatio: 0.5}},
		{"single-hot-key", GenConfig{Shape: ShapeSingleHotKey, ReadRatio: 0.5}},
		{"cycle-heavy", GenConfig{Shape: ShapeCycleHeavy}},
		{"multi-write-rescue", GenConfig{Shape: ShapeMultiWrite, ReadRatio: 0.2}},
		{"mixed", GenConfig{Shape: ShapeMixed, Skew: 0.8, ReadRatio: 0.5,
			StatelessProb: 0.05, MultiWriteProb: 0.15, MissingProb: 0.2}},
	}
}

// ProfileByName resolves a profile by its Name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("check: unknown profile %q (have %s)", name, strings.Join(names, ", "))
}

// RunConfig configures a seed sweep.
type RunConfig struct {
	// StartSeed is the first seed; trial i uses StartSeed+i per profile.
	StartSeed int64
	// Seeds is the number of seeds per profile. Defaults to 10.
	Seeds int
	// Txs and Keys override the per-trial epoch dimensions (0 keeps the
	// GenConfig defaults: 256 txs over 64 keys).
	Txs, Keys int
	// Profiles defaults to Profiles().
	Profiles []Profile
	// Parallelisms defaults to 1, 2, 4, 8.
	Parallelisms []int
	// MaxFailures stops the sweep early; 0 means 5.
	MaxFailures int
	// CG overrides the baseline budget (nil means cg.DefaultConfig());
	// CI uses a tighter TimeBudget so contended trials that explode the
	// baseline's cycle enumeration surface as CGSkipped quickly.
	CG *cg.Config
	// SkipCG drops the baseline from every trial.
	SkipCG bool
	// Verbose, when non-nil, receives one progress line per trial.
	Verbose io.Writer
}

// ProfileStats aggregates the trials of one profile.
type ProfileStats struct {
	Trials      int
	Committed   int
	Aborted     int
	Rescued     int
	CGCommitted int
	CGSkipped   int
}

// Report is the outcome of a sweep.
type Report struct {
	Trials     int
	Failures   []*Failure
	PerProfile map[string]*ProfileStats
}

// Failed reports whether any trial diverged.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// Summary renders the per-profile table plus failures, stable across runs.
func (r *Report) Summary() string {
	var b strings.Builder
	names := make([]string, 0, len(r.PerProfile))
	for n := range r.PerProfile {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := r.PerProfile[n]
		fmt.Fprintf(&b, "%-20s trials=%-3d committed=%-6d aborted=%-5d rescued=%-4d cg-committed=%-6d cg-skipped=%d\n",
			n, s.Trials, s.Committed, s.Aborted, s.Rescued, s.CGCommitted, s.CGSkipped)
	}
	fmt.Fprintf(&b, "total trials: %d, failures: %d\n", r.Trials, len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f.Error())
	}
	return b.String()
}

// Run sweeps Seeds seeds through every profile, running the full
// differential trial on each generated epoch.
func Run(cfg RunConfig) *Report {
	if cfg.Seeds == 0 {
		cfg.Seeds = 10
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 5
	}
	profiles := cfg.Profiles
	if len(profiles) == 0 {
		profiles = Profiles()
	}
	rep := &Report{PerProfile: make(map[string]*ProfileStats)}
	for _, p := range profiles {
		stats := rep.PerProfile[p.Name]
		if stats == nil {
			stats = &ProfileStats{}
			rep.PerProfile[p.Name] = stats
		}
		for i := 0; i < cfg.Seeds; i++ {
			gen := p.Gen
			gen.Seed = cfg.StartSeed + int64(i)
			if cfg.Txs != 0 {
				gen.Txs = cfg.Txs
			}
			if cfg.Keys != 0 {
				gen.Keys = cfg.Keys
			}
			res := RunTrial(TrialConfig{Gen: gen, Parallelisms: cfg.Parallelisms, CG: cfg.CG, SkipCG: cfg.SkipCG})
			rep.Trials++
			stats.Trials++
			stats.Committed += res.Committed
			stats.Aborted += res.Aborted
			stats.Rescued += res.Rescued
			stats.CGCommitted += res.CGCommitted
			if res.CGSkipped {
				stats.CGSkipped++
			}
			if cfg.Verbose != nil {
				status := "ok"
				if res.Failure != nil {
					status = "FAIL " + string(res.Failure.Kind)
				}
				fmt.Fprintf(cfg.Verbose, "%-20s seed=%-4d committed=%-5d aborted=%-4d %s\n",
					p.Name, gen.Seed, res.Committed, res.Aborted, status)
			}
			if res.Failure != nil {
				res.Failure.Profile = p.Name
				rep.Failures = append(rep.Failures, res.Failure)
				if len(rep.Failures) >= cfg.MaxFailures {
					return rep
				}
			}
		}
	}
	return rep
}
