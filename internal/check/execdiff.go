package check

// The executor differential: the same multi-epoch adversarial workload
// executed twice — once reading through the MVCC version cache
// (statedb.View, the pipeline's default), once through per-epoch copied
// snapshots (the retained legacy path) — must observe identical read
// values, produce identical schedules at every parallelism level, and
// commit to byte-identical per-epoch roots. Unlike the single-epoch
// scheduler differential (driver.go), state here EVOLVES: epoch e's
// writes are epoch e+1's read values, so a stale version, a phantom from
// an unreleased reservation, or an over-eager GC fold shows up as a root
// divergence within a few epochs.

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/kvstore"
	"github.com/nezha-dag/nezha/internal/mpt"
	"github.com/nezha-dag/nezha/internal/node"
	"github.com/nezha-dag/nezha/internal/statedb"
	"github.com/nezha-dag/nezha/internal/types"
)

// FailExecDiff: the MVCC executor and the snapshot-copy executor diverged
// (read values, schedules, or per-epoch state roots).
const FailExecDiff FailureKind = "exec-divergence"

// ExecDiffConfig configures one executor-differential run.
type ExecDiffConfig struct {
	// Gen is the epoch template; epoch e regenerates with Seed+e, so the
	// footprints differ per epoch but replay from one seed.
	Gen GenConfig
	// Epochs is the number of committed generations. Defaults to 4.
	Epochs int
	// Parallelisms are the scheduler fan-outs compared per epoch.
	// Defaults to 1, 2, 4, 8.
	Parallelisms []int
	// Workers is the commit fan-out. Defaults to 4.
	Workers int
}

func (c ExecDiffConfig) withDefaults() ExecDiffConfig {
	c.Gen = c.Gen.withDefaults()
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if len(c.Parallelisms) == 0 {
		c.Parallelisms = []int{1, 2, 4, 8}
	}
	if c.Workers == 0 {
		c.Workers = 4
	}
	return c
}

// executor is one side of the differential: a state database plus the
// read path under test.
type executor struct {
	db   *statedb.StateDB
	read func() statedb.Reader
}

// newExecutors builds the MVCC-backed and snapshot-backed executors over
// identical genesis state.
func newExecutors(cfg ExecDiffConfig) (mvccEx, snapEx *executor, err error) {
	genesis, _ := Generate(cfg.Gen)
	keys := make([]types.Key, 0, len(genesis))
	for k := range genesis { //nezha:nondeterminism-ok keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	seed := make([]types.WriteEntry, len(keys))
	for i, k := range keys {
		seed[i] = types.WriteEntry{Key: k, Value: genesis[k]}
	}
	mk := func(view bool) (*executor, error) {
		db := statedb.Open(kvstore.NewMemory(), mpt.EmptyRoot)
		if _, err := db.Commit(seed); err != nil {
			return nil, err
		}
		ex := &executor{db: db}
		if view {
			ex.read = func() statedb.Reader { return db.View() }
		} else {
			ex.read = func() statedb.Reader { return db.Snapshot() }
		}
		return ex, nil
	}
	if mvccEx, err = mk(true); err != nil {
		return nil, nil, err
	}
	if snapEx, err = mk(false); err != nil {
		return nil, nil, err
	}
	return mvccEx, snapEx, nil
}

// execEpoch re-executes the epoch's generated footprints against the
// executor's live read path: reads observe the current state, and every
// write value is derived from the transaction's read values, so a wrong
// read propagates into a wrong root instead of cancelling out.
func (ex *executor) execEpoch(templates []*types.SimResult, epoch int) ([]*types.SimResult, error) {
	r := ex.read()
	sims := make([]*types.SimResult, len(templates))
	for i, tpl := range templates {
		sim := &types.SimResult{Tx: tpl.Tx}
		var readBuf []byte
		for _, re := range tpl.Reads {
			v, err := r.Get(re.Key)
			if err != nil {
				return nil, fmt.Errorf("epoch %d tx %d read: %w", epoch, tpl.Tx.ID, err)
			}
			sim.Reads = append(sim.Reads, types.ReadEntry{Key: re.Key, Value: v})
			readBuf = append(readBuf, v...)
		}
		for _, we := range tpl.Writes {
			h := types.HashBytes(append(append(append([]byte{byte(epoch)}, we.Key[:]...), we.Value...), readBuf...))
			sim.Writes = append(sim.Writes, types.WriteEntry{Key: we.Key, Value: h[:8]})
		}
		sims[i] = sim
	}
	return sims, nil
}

// scheduleEpoch schedules one executed epoch at every parallelism level,
// requiring identical output, and verifies it against the serial-replay
// oracle.
func scheduleEpoch(cfg ExecDiffConfig, sims []*types.SimResult, epoch int) (*types.Schedule, *Failure) {
	var ref *types.Schedule
	for _, par := range cfg.Parallelisms {
		cc := core.DefaultConfig()
		cc.Parallelism = par
		sch, err := core.NewScheduler(cc)
		if err != nil {
			return nil, &Failure{Kind: FailSchedulerError, Detail: fmt.Sprintf("epoch %d (par=%d): %v", epoch, par, err)}
		}
		out, _, err := sch.Schedule(sims)
		if err != nil {
			return nil, &Failure{Kind: FailSchedulerError, Detail: fmt.Sprintf("epoch %d (par=%d): %v", epoch, par, err)}
		}
		if ref == nil {
			ref = out
		} else if !ref.Equal(out) {
			return nil, &Failure{Kind: FailParallelism,
				Detail: fmt.Sprintf("epoch %d parallelism %d vs %d: %s", epoch, cfg.Parallelisms[0], par, diffSchedules(ref, out))}
		}
	}
	// The epoch's pre-state, reconstructed from the recorded reads, is
	// exactly what serial replay must reproduce.
	pre := make(map[types.Key][]byte)
	for _, sim := range sims {
		for _, re := range sim.Reads {
			pre[re.Key] = re.Value
		}
	}
	if err := core.VerifySchedule(pre, sims, ref); err != nil {
		return nil, &Failure{Kind: FailOracle, Detail: fmt.Sprintf("epoch %d: %v", epoch, err)}
	}
	return ref, nil
}

// RunExecDiff drives both executors through cfg.Epochs generations of one
// workload shape and reports the first divergence (nil when clean).
func RunExecDiff(cfg ExecDiffConfig) *Failure {
	cfg = cfg.withDefaults()
	mvccEx, snapEx, err := newExecutors(cfg)
	if err != nil {
		return &Failure{Kind: FailExecDiff, Gen: cfg.Gen, Detail: fmt.Sprintf("genesis: %v", err)}
	}
	for e := 0; e < cfg.Epochs; e++ {
		gen := cfg.Gen
		gen.Seed += int64(e)
		_, templates := Generate(gen)

		mvccSims, err := mvccEx.execEpoch(templates, e)
		if err != nil {
			return &Failure{Kind: FailExecDiff, Gen: cfg.Gen, Detail: "mvcc: " + err.Error()}
		}
		snapSims, err := snapEx.execEpoch(templates, e)
		if err != nil {
			return &Failure{Kind: FailExecDiff, Gen: cfg.Gen, Detail: "snapshot: " + err.Error()}
		}
		if f := diffSims(mvccSims, snapSims, e); f != nil {
			f.Gen = cfg.Gen
			return f
		}

		sched, fail := scheduleEpoch(cfg, mvccSims, e)
		if fail != nil {
			fail.Gen = cfg.Gen
			return fail
		}
		snapSched, fail := scheduleEpoch(cfg, snapSims, e)
		if fail != nil {
			fail.Gen = cfg.Gen
			return fail
		}
		if !sched.Equal(snapSched) {
			return &Failure{Kind: FailExecDiff, Gen: cfg.Gen,
				Detail: fmt.Sprintf("epoch %d commit groups: %s", e, diffSchedules(sched, snapSched))}
		}

		mvccRoot, err := node.CommitSchedule(mvccEx.db, mvccSims, sched, cfg.Workers)
		if err != nil {
			return &Failure{Kind: FailExecDiff, Gen: cfg.Gen, Detail: fmt.Sprintf("epoch %d mvcc commit: %v", e, err)}
		}
		snapRoot, err := node.CommitSchedule(snapEx.db, snapSims, sched, cfg.Workers)
		if err != nil {
			return &Failure{Kind: FailExecDiff, Gen: cfg.Gen, Detail: fmt.Sprintf("epoch %d snapshot commit: %v", e, err)}
		}
		if mvccRoot != snapRoot {
			return &Failure{Kind: FailExecDiff, Gen: cfg.Gen,
				Detail: fmt.Sprintf("epoch %d root: mvcc %x != snapshot %x", e, mvccRoot[:8], snapRoot[:8])}
		}
		// Fold old generations away mid-run so the sweep also exercises
		// the GC path (a fold that corrupts a base surfaces next epoch).
		mvccEx.db.AdvanceWatermark()
	}
	return nil
}

// diffSims compares the two executors' read observations entry for entry.
func diffSims(a, b []*types.SimResult, epoch int) *Failure {
	for i := range a {
		if len(a[i].Reads) != len(b[i].Reads) {
			return &Failure{Kind: FailExecDiff,
				Detail: fmt.Sprintf("epoch %d tx %d: %d vs %d reads", epoch, a[i].Tx.ID, len(a[i].Reads), len(b[i].Reads))}
		}
		for j := range a[i].Reads {
			if a[i].Reads[j].Key != b[i].Reads[j].Key || !bytes.Equal(a[i].Reads[j].Value, b[i].Reads[j].Value) {
				return &Failure{Kind: FailExecDiff,
					Detail: fmt.Sprintf("epoch %d tx %d key %x: mvcc read %x, snapshot read %x",
						epoch, a[i].Tx.ID, a[i].Reads[j].Key[:8], a[i].Reads[j].Value, b[i].Reads[j].Value)}
			}
		}
	}
	return nil
}

// ExecDiffRunConfig configures an executor-differential sweep across the
// standard profiles.
type ExecDiffRunConfig struct {
	// StartSeed is the first seed; trial i uses StartSeed+i per profile.
	StartSeed int64
	// Seeds is the number of seeds per profile. Defaults to 5.
	Seeds int
	// Epochs per trial. Defaults to 4.
	Epochs int
	// Txs and Keys override the per-trial epoch dimensions.
	Txs, Keys int
	// Parallelisms defaults to 1, 2, 4, 8.
	Parallelisms []int
	// MaxFailures stops the sweep early; 0 means 5.
	MaxFailures int
	// Verbose, when non-nil, receives one progress line per trial.
	Verbose io.Writer
}

// ExecDiffReport is the outcome of an executor-differential sweep.
type ExecDiffReport struct {
	Trials   int
	Failures []*Failure
}

// Failed reports whether any trial diverged.
func (r *ExecDiffReport) Failed() bool { return len(r.Failures) > 0 }

// Summary renders the sweep outcome, stable across runs.
func (r *ExecDiffReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "execdiff trials: %d, failures: %d\n", r.Trials, len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f.Error())
	}
	return b.String()
}

// RunExecDiffSweep runs the executor differential over every standard
// profile at every seed.
func RunExecDiffSweep(cfg ExecDiffRunConfig) *ExecDiffReport {
	if cfg.Seeds == 0 {
		cfg.Seeds = 5
	}
	if cfg.MaxFailures == 0 {
		cfg.MaxFailures = 5
	}
	rep := &ExecDiffReport{}
	for _, p := range Profiles() {
		for i := 0; i < cfg.Seeds; i++ {
			gen := p.Gen
			gen.Seed = cfg.StartSeed + int64(i)
			if cfg.Txs != 0 {
				gen.Txs = cfg.Txs
			}
			if cfg.Keys != 0 {
				gen.Keys = cfg.Keys
			}
			fail := RunExecDiff(ExecDiffConfig{Gen: gen, Epochs: cfg.Epochs, Parallelisms: cfg.Parallelisms})
			rep.Trials++
			if cfg.Verbose != nil {
				status := "ok"
				if fail != nil {
					status = "FAIL " + string(fail.Kind)
				}
				fmt.Fprintf(cfg.Verbose, "%-20s seed=%-4d epochs=%-2d %s\n", p.Name, gen.Seed, cfg.Epochs, status)
			}
			if fail != nil {
				fail.Profile = p.Name
				rep.Failures = append(rep.Failures, fail)
				if len(rep.Failures) >= cfg.MaxFailures {
					return rep
				}
			}
		}
	}
	return rep
}
