package token_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"github.com/nezha-dag/nezha/internal/contracts/token"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/vm"
)

// world wraps a mutable state and executes calls, applying writes — a
// miniature serial chain for unit-testing the contract.
type world struct {
	t     *testing.T
	state vm.MapReader
}

func newWorld(t *testing.T) *world {
	return &world{t: t, state: vm.MapReader{}}
}

func (w *world) exec(c token.Call) (*vm.Result, error) {
	res, err := vm.Execute(token.Program(), vm.Context{
		Contract: token.ContractAddress,
		Payload:  c.Encode(),
		GasLimit: 1_000_000,
	}, w.state)
	if err == nil {
		for _, wr := range res.Writes {
			w.state[wr.Key] = wr.Value
		}
	}
	return res, err
}

func (w *world) mustExec(c token.Call) *vm.Result {
	w.t.Helper()
	res, err := w.exec(c)
	if err != nil {
		w.t.Fatalf("%d: %v", c.Op, err)
	}
	return res
}

func (w *world) balance(acct uint64) uint64 {
	raw := w.state[token.BalanceKey(acct)]
	if len(raw) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(raw)
}

func (w *world) supply() uint64 {
	raw := w.state[token.SupplyKey()]
	if len(raw) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(raw)
}

func TestMintAndSupply(t *testing.T) {
	w := newWorld(t)
	w.mustExec(token.Call{Op: token.OpMint, Arg1: 1, Amount: 100})
	w.mustExec(token.Call{Op: token.OpMint, Arg1: 2, Amount: 50})
	if w.balance(1) != 100 || w.balance(2) != 50 {
		t.Fatalf("balances %d/%d", w.balance(1), w.balance(2))
	}
	if w.supply() != 150 {
		t.Fatalf("supply %d", w.supply())
	}
}

func TestTransferMovesFundsAndConserves(t *testing.T) {
	w := newWorld(t)
	w.mustExec(token.Call{Op: token.OpMint, Arg1: 1, Amount: 100})
	w.mustExec(token.Call{Op: token.OpTransfer, Arg1: 1, Arg2: 2, Amount: 30})
	if w.balance(1) != 70 || w.balance(2) != 30 {
		t.Fatalf("balances %d/%d", w.balance(1), w.balance(2))
	}
	if w.supply() != 100 {
		t.Fatalf("transfer changed supply: %d", w.supply())
	}
}

func TestTransferRevertsOnInsufficientFunds(t *testing.T) {
	w := newWorld(t)
	w.mustExec(token.Call{Op: token.OpMint, Arg1: 1, Amount: 10})
	_, err := w.exec(token.Call{Op: token.OpTransfer, Arg1: 1, Arg2: 2, Amount: 11})
	if !errors.Is(err, vm.ErrRevert) {
		t.Fatalf("err = %v, want revert", err)
	}
	// Reverted execution must leave no trace.
	if w.balance(1) != 10 || w.balance(2) != 0 {
		t.Fatalf("revert leaked writes: %d/%d", w.balance(1), w.balance(2))
	}
	// Exact balance succeeds.
	w.mustExec(token.Call{Op: token.OpTransfer, Arg1: 1, Arg2: 2, Amount: 10})
	if w.balance(1) != 0 || w.balance(2) != 10 {
		t.Fatalf("exact transfer: %d/%d", w.balance(1), w.balance(2))
	}
}

func TestBalanceOfReturns(t *testing.T) {
	w := newWorld(t)
	w.mustExec(token.Call{Op: token.OpMint, Arg1: 7, Amount: 42})
	res := w.mustExec(token.Call{Op: token.OpBalanceOf, Arg1: 7})
	if !res.Returned || res.ReturnWord != 42 {
		t.Fatalf("balance_of = %d", res.ReturnWord)
	}
	if len(res.Writes) != 0 {
		t.Fatal("balance_of wrote state")
	}
}

func TestApproveAndTransferFrom(t *testing.T) {
	w := newWorld(t)
	w.mustExec(token.Call{Op: token.OpMint, Arg1: 1, Amount: 100})
	w.mustExec(token.Call{Op: token.OpApprove, Arg1: 1, Arg2: 2, Amount: 40})

	// Within allowance: succeeds, decrements allowance and balance.
	w.mustExec(token.Call{Op: token.OpTransferFrom, Arg1: 1, Arg2: 2, Amount: 25})
	if w.balance(1) != 75 || w.balance(2) != 25 {
		t.Fatalf("balances %d/%d", w.balance(1), w.balance(2))
	}
	// Remaining allowance 15: a 16-unit pull reverts.
	if _, err := w.exec(token.Call{Op: token.OpTransferFrom, Arg1: 1, Arg2: 2, Amount: 16}); !errors.Is(err, vm.ErrRevert) {
		t.Fatalf("over-allowance: %v", err)
	}
	// 15 more succeeds and empties the allowance.
	w.mustExec(token.Call{Op: token.OpTransferFrom, Arg1: 1, Arg2: 2, Amount: 15})
	if _, err := w.exec(token.Call{Op: token.OpTransferFrom, Arg1: 1, Arg2: 2, Amount: 1}); !errors.Is(err, vm.ErrRevert) {
		t.Fatalf("spent allowance still works: %v", err)
	}
	if w.balance(1) != 60 || w.balance(2) != 40 {
		t.Fatalf("final balances %d/%d", w.balance(1), w.balance(2))
	}
}

func TestTransferFromInsufficientBalanceReverts(t *testing.T) {
	w := newWorld(t)
	w.mustExec(token.Call{Op: token.OpMint, Arg1: 1, Amount: 5})
	w.mustExec(token.Call{Op: token.OpApprove, Arg1: 1, Arg2: 2, Amount: 100})
	if _, err := w.exec(token.Call{Op: token.OpTransferFrom, Arg1: 1, Arg2: 2, Amount: 10}); !errors.Is(err, vm.ErrRevert) {
		t.Fatalf("err = %v", err)
	}
	if w.balance(1) != 5 {
		t.Fatal("revert leaked")
	}
}

func TestUnknownSelectorReverts(t *testing.T) {
	_, err := vm.Execute(token.Program(), vm.Context{
		Contract: token.ContractAddress,
		Payload:  []byte{0x7e, 0, 0, 0},
		GasLimit: 100_000,
	}, vm.MapReader{})
	if !errors.Is(err, vm.ErrRevert) {
		t.Fatalf("err = %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := token.Call{Op: token.OpTransferFrom, Arg1: 11, Arg2: 22, Amount: 33}
	out, err := token.Decode(in.Encode())
	if err != nil || out != in {
		t.Fatalf("%+v, %v", out, err)
	}
	if _, err := token.Decode([]byte{1}); err == nil {
		t.Fatal("short payload accepted")
	}
	bad := in.Encode()
	bad[0] = 99
	if _, err := token.Decode(bad); err == nil {
		t.Fatal("bad selector accepted")
	}
}

func TestKeyNamespaces(t *testing.T) {
	if token.BalanceKey(1) == token.SupplyKey() {
		t.Fatal("balance/supply collide")
	}
	if token.AllowanceKey(1, 2) == token.AllowanceKey(2, 1) {
		t.Fatal("allowance not direction-sensitive")
	}
	var smallbankKey types.Key
	if token.BalanceKey(1) == smallbankKey {
		t.Fatal("zero key")
	}
}

func TestRWFootprints(t *testing.T) {
	w := newWorld(t)
	w.mustExec(token.Call{Op: token.OpMint, Arg1: 1, Amount: 100})
	res := w.mustExec(token.Call{Op: token.OpTransfer, Arg1: 1, Arg2: 2, Amount: 5})
	// Transfer reads both balances (recipient via its read-modify-write)
	// and writes both.
	if len(res.Writes) != 2 {
		t.Fatalf("transfer writes %d cells", len(res.Writes))
	}
	keys := map[types.Key]bool{}
	for _, wr := range res.Writes {
		keys[wr.Key] = true
	}
	if !keys[token.BalanceKey(1)] || !keys[token.BalanceKey(2)] {
		t.Fatal("transfer write set wrong")
	}
}
