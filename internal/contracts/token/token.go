// Package token implements an ERC20-style fungible-token contract for
// MiniVM — the second workload domain of this reproduction. The paper's
// evaluation uses SmallBank only, but its introduction motivates general
// smart contracts on DAG-based chains; the token contract exercises a
// different conflict structure (every transfer touches two balances plus a
// global supply read for mint), and the benchmark harness's machinery runs
// it unchanged, demonstrating that nothing in the pipeline is
// SmallBank-specific.
//
// Operations (selector byte, then three big-endian uint64 args):
//
//	Transfer (1): balances[from] -= amt (reverts on insufficient funds);
//	              balances[to] += amt
//	Mint     (2): balances[to] += amt; totalSupply += amt
//	BalanceOf(3): returns balances[acct]
//	Approve  (4): allowance[owner][spender] = amt
//	TransferFrom (5): allowance[owner][caller-designated spender] -= amt,
//	              balances[owner] -= amt, balances[to] += amt
//
// Unlike SmallBank's saturating arithmetic, Transfer REVERTS on
// insufficient balance — exercising the AbortExecution path of the node
// pipeline under contention.
package token

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/vm"
)

// Op selects a token operation.
type Op byte

// The token operations.
const (
	OpTransfer Op = iota + 1
	OpMint
	OpBalanceOf
	OpApprove
	OpTransferFrom
)

// Storage tables.
const (
	// TableBalances maps account → balance.
	TableBalances uint64 = 1
	// TableAllowance maps (owner, spender) → allowance; the slot key is
	// owner*2^32+spender in this reproduction's compact account space.
	TableAllowance uint64 = 2
	// TableSupply holds the total supply at key 0.
	TableSupply uint64 = 3
)

// ContractAddress is the deterministic deployment address.
var ContractAddress = deriveAddr()

func deriveAddr() types.Address {
	h := types.HashBytes([]byte("contract/token/v1"))
	var a types.Address
	copy(a[:], h[:types.AddressLen])
	return a
}

// Calldata layout.
const (
	offArg1 = 1  // from / to / acct / owner
	offArg2 = 9  // to / spender
	offArg3 = 17 // amount
)

// Call is one decoded invocation.
type Call struct {
	Op     Op
	Arg1   uint64
	Arg2   uint64
	Amount uint64
}

// Encode serializes the call into MiniVM calldata.
func (c Call) Encode() []byte {
	buf := make([]byte, 0, 1+3*8)
	buf = append(buf, byte(c.Op))
	buf = binary.BigEndian.AppendUint64(buf, c.Arg1)
	buf = binary.BigEndian.AppendUint64(buf, c.Arg2)
	buf = binary.BigEndian.AppendUint64(buf, c.Amount)
	return buf
}

// Decode parses calldata produced by Encode.
func Decode(payload []byte) (Call, error) {
	if len(payload) != 1+3*8 {
		return Call{}, fmt.Errorf("token: payload length %d", len(payload))
	}
	op := Op(payload[0])
	if op < OpTransfer || op > OpTransferFrom {
		return Call{}, fmt.Errorf("token: unknown selector %d", payload[0])
	}
	return Call{
		Op:     op,
		Arg1:   binary.BigEndian.Uint64(payload[1:9]),
		Arg2:   binary.BigEndian.Uint64(payload[9:17]),
		Amount: binary.BigEndian.Uint64(payload[17:25]),
	}, nil
}

// BalanceKey returns the state key of an account's token balance.
func BalanceKey(acct uint64) types.Key { return slotKey(TableBalances, acct) }

// AllowanceKey returns the state key of an (owner, spender) allowance.
func AllowanceKey(owner, spender uint64) types.Key {
	return slotKey(TableAllowance, owner<<32|spender&0xffffffff)
}

// SupplyKey returns the total-supply state key.
func SupplyKey() types.Key { return slotKey(TableSupply, 0) }

// slotKey mirrors the MiniVM's (table, key) storage addressing.
func slotKey(table, key uint64) types.Key {
	var pre [16]byte
	binary.BigEndian.PutUint64(pre[:8], table)
	binary.BigEndian.PutUint64(pre[8:], key)
	return types.StorageKey(ContractAddress, types.HashBytes(pre[:]))
}

var (
	programOnce sync.Once
	programCode []byte
)

// Program returns the token contract bytecode.
func Program() []byte {
	programOnce.Do(func() { programCode = assemble() })
	return programCode
}

func assemble() []byte {
	a := vm.NewAssembler()

	dispatch := []struct {
		op    Op
		label string
	}{
		{OpTransfer, "transfer"},
		{OpMint, "mint"},
		{OpBalanceOf, "balance_of"},
		{OpApprove, "approve"},
		{OpTransferFrom, "transfer_from"},
	}
	for _, d := range dispatch {
		a.CalldataByte(0).Push(uint64(d.op)).Eq().JumpI(d.label)
	}
	a.Revert()

	// transfer(from=arg1, to=arg2, amount): revert on insufficient funds.
	a.Label("transfer")
	a.Push(TableBalances).CalldataWord(offArg1).Sload() // bal(from)
	a.Dup(1).CalldataWord(offArg3).Lt()                 // bal | bal<amt
	a.JumpI("t_revert")
	a.Push(TableBalances).CalldataWord(offArg1) // bal, TBL, from
	a.Dup(3).CalldataWord(offArg3).Sub()        // bal, TBL, from, bal-amt
	a.Sstore()                                  // bal
	a.Pop()
	a.Push(TableBalances).CalldataWord(offArg2)
	a.Push(TableBalances).CalldataWord(offArg2).Sload()
	a.CalldataWord(offArg3).Add()
	a.Sstore().Stop()
	a.Label("t_revert")
	a.Revert()

	// mint(to=arg1, amount): balances[to] += amt; supply += amt.
	a.Label("mint")
	a.Push(TableBalances).CalldataWord(offArg1)
	a.Push(TableBalances).CalldataWord(offArg1).Sload()
	a.CalldataWord(offArg3).Add()
	a.Sstore()
	a.Push(TableSupply).Push(0)
	a.Push(TableSupply).Push(0).Sload()
	a.CalldataWord(offArg3).Add()
	a.Sstore().Stop()

	// balance_of(acct=arg1): return balances[acct].
	a.Label("balance_of")
	a.Push(TableBalances).CalldataWord(offArg1).Sload().Return()

	// approve(owner=arg1, spender=arg2, amount):
	// allowance[owner<<32|spender] = amount.
	a.Label("approve")
	a.Push(TableAllowance)
	a.CalldataWord(offArg1).Push(1 << 32).Mul() // owner<<32 (MUL: MiniVM has no SHL)
	a.CalldataWord(offArg2).Or()
	a.CalldataWord(offArg3)
	a.Sstore().Stop()

	// transfer_from(owner=arg1, to=arg2, amount): needs allowance >= amt
	// and balance >= amt; reverts otherwise. The spender identity is
	// folded into the allowance slot by approve; for this compact model
	// the "spender" is arg2 (the recipient).
	a.Label("transfer_from")
	// allowance check
	a.Push(TableAllowance)
	a.CalldataWord(offArg1).Push(1 << 32).Mul()
	a.CalldataWord(offArg2).Or() // TBL, slot
	a.Dup(2).Dup(2).Sload()      // TBL, slot, allow
	a.Dup(1).CalldataWord(offArg3).Lt()
	a.JumpI("tf_revert") // TBL, slot, allow
	// balance check
	a.Push(TableBalances).CalldataWord(offArg1).Sload() // ..., allow, bal
	a.Dup(1).CalldataWord(offArg3).Lt()
	a.JumpI("tf_revert2") // TBL, slot, allow, bal
	// balances[owner] = bal - amt
	a.Push(TableBalances).CalldataWord(offArg1) // ..., bal, TB, owner
	a.Dup(3).CalldataWord(offArg3).Sub()
	a.Sstore()
	a.Pop() // drop bal → TBL, slot, allow
	// allowance[slot] = allow - amt
	a.CalldataWord(offArg3).Sub() // TBL, slot, allow-amt
	a.Sstore()
	// balances[to] += amt
	a.Push(TableBalances).CalldataWord(offArg2)
	a.Push(TableBalances).CalldataWord(offArg2).Sload()
	a.CalldataWord(offArg3).Add()
	a.Sstore().Stop()
	a.Label("tf_revert")
	a.Revert()
	a.Label("tf_revert2")
	a.Revert()

	return a.MustAssemble()
}
