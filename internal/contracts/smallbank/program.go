package smallbank

import (
	"sync"

	"github.com/nezha-dag/nezha/internal/vm"
)

// Calldata layout (see workload.EncodeCall): selector byte at offset 0,
// then three big-endian uint64 arguments.
const (
	offAcct1  = 1
	offAcct2  = 9
	offAmount = 17
)

var (
	programOnce sync.Once
	programCode []byte
)

// Program returns the SmallBank contract bytecode — the six transaction
// types of §VI-A hand-compiled to MiniVM, dispatching on the selector byte.
// The storage semantics match workload.applyCall exactly (cross-checked by
// tests): saturating subtraction for payments, the +1 penalty for checks
// written against insufficient total funds, and plain wrapping addition for
// deposits.
func Program() []byte {
	programOnce.Do(func() {
		programCode = assemble()
	})
	return programCode
}

func assemble() []byte {
	a := vm.NewAssembler()

	// Dispatcher.
	dispatch := []struct {
		op    Op
		label string
	}{
		{OpTransactSavings, "transact_savings"},
		{OpDepositChecking, "deposit_checking"},
		{OpSendPayment, "send_payment"},
		{OpWriteCheck, "write_check"},
		{OpAmalgamate, "amalgamate"},
		{OpGetBalance, "get_balance"},
	}
	for _, d := range dispatch {
		a.CalldataByte(0).Push(uint64(d.op)).Eq().JumpI(d.label)
	}
	a.Revert() // unknown selector

	// transact_savings: savings[a1] += amount
	a.Label("transact_savings")
	a.Push(TableSavings).CalldataWord(offAcct1) // store target
	a.Push(TableSavings).CalldataWord(offAcct1).Sload()
	a.CalldataWord(offAmount).Add()
	a.Sstore().Stop()

	// deposit_checking: checking[a1] += amount
	a.Label("deposit_checking")
	a.Push(TableChecking).CalldataWord(offAcct1)
	a.Push(TableChecking).CalldataWord(offAcct1).Sload()
	a.CalldataWord(offAmount).Add()
	a.Sstore().Stop()

	// send_payment: checking[a1] -= amount (saturating);
	//               checking[a2] += amount
	a.Label("send_payment")
	a.Push(TableChecking).CalldataWord(offAcct1)         // store target a1
	a.Push(TableChecking).CalldataWord(offAcct1).Sload() // c1
	a.Dup(1).CalldataWord(offAmount).Lt()                // c1 | c1<amt
	a.JumpI("sp_underflow")
	a.CalldataWord(offAmount).Sub() // c1-amt
	a.Jump("sp_store1")
	a.Label("sp_underflow")
	a.Pop().Push(0)
	a.Label("sp_store1")
	a.Sstore()
	a.Push(TableChecking).CalldataWord(offAcct2)
	a.Push(TableChecking).CalldataWord(offAcct2).Sload()
	a.CalldataWord(offAmount).Add()
	a.Sstore().Stop()

	// write_check: amt' = amount (+1 when savings[a1]+checking[a1] <
	// amount); checking[a1] -= amt' (saturating). Reads checking first,
	// then savings, matching Footprint order.
	a.Label("write_check")
	a.Push(TableChecking).CalldataWord(offAcct1)         // store target
	a.Push(TableChecking).CalldataWord(offAcct1).Sload() // c1
	a.Push(TableSavings).CalldataWord(offAcct1).Sload()  // c1 s1
	a.Dup(2).Add()                                       // c1 total
	a.CalldataWord(offAmount).Lt()                       // c1 total<amt
	a.JumpI("wc_penalty")
	a.CalldataWord(offAmount) // c1 amt
	a.Jump("wc_sub")
	a.Label("wc_penalty")
	a.CalldataWord(offAmount).Push(1).Add() // c1 amt+1
	a.Label("wc_sub")
	a.Dup(2).Dup(2).Lt() // c1 amt' | c1<amt'
	a.JumpI("wc_underflow")
	a.Sub() // c1 - amt'
	a.Jump("wc_store")
	a.Label("wc_underflow")
	a.Pop().Pop().Push(0)
	a.Label("wc_store")
	a.Sstore().Stop()

	// amalgamate: checking[a2] += savings[a1] + checking[a1];
	//             savings[a1] = 0; checking[a1] = 0
	a.Label("amalgamate")
	a.Push(TableChecking).CalldataWord(offAcct2)
	a.Push(TableChecking).CalldataWord(offAcct2).Sload() // c2 (read order: c2, s1, c1)
	a.Push(TableSavings).CalldataWord(offAcct1).Sload().Add()
	a.Push(TableChecking).CalldataWord(offAcct1).Sload().Add()
	a.Sstore()
	a.Push(TableSavings).CalldataWord(offAcct1).Push(0).Sstore()
	a.Push(TableChecking).CalldataWord(offAcct1).Push(0).Sstore()
	a.Stop()

	// get_balance: return savings[a1] + checking[a1]
	a.Label("get_balance")
	a.Push(TableSavings).CalldataWord(offAcct1).Sload()
	a.Push(TableChecking).CalldataWord(offAcct1).Sload()
	a.Add().Return()

	return a.MustAssemble()
}
