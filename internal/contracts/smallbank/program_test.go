package smallbank_test

import (
	"bytes"
	"errors"
	"testing"

	"github.com/nezha-dag/nezha/internal/contracts/smallbank"
	"github.com/nezha-dag/nezha/internal/types"
	"github.com/nezha-dag/nezha/internal/vm"
	"github.com/nezha-dag/nezha/internal/workload"
)

func executeCall(t *testing.T, call workload.Call, state vm.MapReader) *vm.Result {
	t.Helper()
	res, err := vm.Execute(smallbank.Program(), vm.Context{
		Contract: smallbank.ContractAddress,
		Payload:  workload.EncodeCall(call),
		GasLimit: 1_000_000,
	}, state)
	if err != nil {
		t.Fatalf("%v: %v", call.Op, err)
	}
	return res
}

func balanceState(pairs map[types.Key]uint64) vm.MapReader {
	state := vm.MapReader{}
	for k, v := range pairs {
		state[k] = workload.EncodeBalance(v)
	}
	return state
}

func TestProgramRejectsUnknownSelector(t *testing.T) {
	_, err := vm.Execute(smallbank.Program(), vm.Context{
		Contract: smallbank.ContractAddress,
		Payload:  []byte{0x7f, 0, 0, 0},
		GasLimit: 1_000_000,
	}, vm.MapReader{})
	if !errors.Is(err, vm.ErrRevert) {
		t.Fatalf("err = %v, want revert", err)
	}
}

func TestGetBalanceReturnsTotal(t *testing.T) {
	state := balanceState(map[types.Key]uint64{
		smallbank.SavingsKey(4):  70,
		smallbank.CheckingKey(4): 30,
	})
	res := executeCall(t, workload.Call{Op: smallbank.OpGetBalance, Acct1: 4}, state)
	if !res.Returned || res.ReturnWord != 100 {
		t.Fatalf("get_balance = %d (returned %v)", res.ReturnWord, res.Returned)
	}
	if len(res.Writes) != 0 {
		t.Fatalf("get_balance wrote: %+v", res.Writes)
	}
}

func TestSendPaymentSaturates(t *testing.T) {
	state := balanceState(map[types.Key]uint64{
		smallbank.CheckingKey(1): 10,
		smallbank.CheckingKey(2): 5,
	})
	res := executeCall(t, workload.Call{Op: smallbank.OpSendPayment, Acct1: 1, Acct2: 2, Amount: 100}, state)
	got := map[types.Key][]byte{}
	for _, w := range res.Writes {
		got[w.Key] = w.Value
	}
	if workload.DecodeBalance(got[smallbank.CheckingKey(1)]) != 0 {
		t.Fatalf("sender balance = %d, want 0 (saturated)", workload.DecodeBalance(got[smallbank.CheckingKey(1)]))
	}
	if workload.DecodeBalance(got[smallbank.CheckingKey(2)]) != 105 {
		t.Fatalf("receiver balance = %d, want 105", workload.DecodeBalance(got[smallbank.CheckingKey(2)]))
	}
}

func TestWriteCheckPenalty(t *testing.T) {
	// savings 3 + checking 5 = 8 < amount 10 → deduct 11 → saturate to 0.
	state := balanceState(map[types.Key]uint64{
		smallbank.SavingsKey(1):  3,
		smallbank.CheckingKey(1): 5,
	})
	res := executeCall(t, workload.Call{Op: smallbank.OpWriteCheck, Acct1: 1, Amount: 10}, state)
	if len(res.Writes) != 1 || workload.DecodeBalance(res.Writes[0].Value) != 0 {
		t.Fatalf("writes = %+v", res.Writes)
	}
	// Sufficient funds: checking 50, amount 10 → 40.
	state = balanceState(map[types.Key]uint64{
		smallbank.SavingsKey(1):  100,
		smallbank.CheckingKey(1): 50,
	})
	res = executeCall(t, workload.Call{Op: smallbank.OpWriteCheck, Acct1: 1, Amount: 10}, state)
	if workload.DecodeBalance(res.Writes[0].Value) != 40 {
		t.Fatalf("balance = %d, want 40", workload.DecodeBalance(res.Writes[0].Value))
	}
}

// TestProgramMatchesFastPathSimulation is the load-bearing equivalence
// check: across thousands of generated calls at several skews, the MiniVM
// execution of the SmallBank bytecode must produce byte-identical read and
// write sets to workload.Simulate's closed-form fast path. The scheduling
// benchmarks use the fast path; the full-node pipeline uses the VM — this
// test is what makes their results interchangeable.
func TestProgramMatchesFastPathSimulation(t *testing.T) {
	for _, skew := range []float64{0, 0.8} {
		cfg := workload.DefaultConfig()
		cfg.Skew = skew
		cfg.Accounts = 500
		gen, err := workload.NewGenerator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		txs := gen.Txs(1500)
		for i, tx := range txs {
			tx.ID = types.TxID(i)
		}
		snapshot, err := gen.Snapshot(txs)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := workload.Simulate(txs, snapshot)
		if err != nil {
			t.Fatal(err)
		}
		reader := vm.MapReader(snapshot)
		for i, tx := range txs {
			res, err := vm.Execute(smallbank.Program(), vm.Context{
				Contract: smallbank.ContractAddress,
				Caller:   tx.From,
				Payload:  tx.Payload,
				GasLimit: tx.Gas,
			}, reader)
			if err != nil {
				t.Fatalf("skew %.1f tx %d: %v", skew, i, err)
			}
			want := fast[i]
			if len(res.Reads) != len(want.Reads) || len(res.Writes) != len(want.Writes) {
				t.Fatalf("skew %.1f tx %d: set sizes differ: vm %d/%d, fast %d/%d",
					skew, i, len(res.Reads), len(res.Writes), len(want.Reads), len(want.Writes))
			}
			for j := range want.Reads {
				if res.Reads[j].Key != want.Reads[j].Key || !bytes.Equal(res.Reads[j].Value, want.Reads[j].Value) {
					t.Fatalf("skew %.1f tx %d read %d differs", skew, i, j)
				}
			}
			for j := range want.Writes {
				if res.Writes[j].Key != want.Writes[j].Key {
					t.Fatalf("skew %.1f tx %d write key %d differs", skew, i, j)
				}
				if !bytes.Equal(res.Writes[j].Value, want.Writes[j].Value) {
					t.Fatalf("skew %.1f tx %d write value %d: vm %x fast %x",
						skew, i, j, res.Writes[j].Value, want.Writes[j].Value)
				}
			}
		}
	}
}

func BenchmarkSmallBankExecute(b *testing.B) {
	gen, err := workload.NewGenerator(workload.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	txs := gen.Txs(1000)
	snapshot, err := gen.Snapshot(txs)
	if err != nil {
		b.Fatal(err)
	}
	reader := vm.MapReader(snapshot)
	prog := smallbank.Program()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := txs[i%len(txs)]
		if _, err := vm.Execute(prog, vm.Context{
			Contract: smallbank.ContractAddress,
			Payload:  tx.Payload,
			GasLimit: tx.Gas,
		}, reader); err != nil {
			b.Fatal(err)
		}
	}
}
