// Package smallbank implements the SmallBank benchmark contract the paper
// evaluates with (§VI-A) — the same workload used by Fabric++ and
// FabricSharp. The paper runs a Solidity SmallBank on the EVM; this
// reproduction compiles the six transaction types to MiniVM bytecode (see
// program.go) over an identical logical state layout: every customer has a
// savings balance and a checking balance, each stored in its own state cell.
//
// The six transaction types and their read/write footprints:
//
//	TransactSavings (updateSavings):  R savings(a)            W savings(a)
//	DepositChecking (updateBalance):  R checking(a)           W checking(a)
//	SendPayment:                      R checking(a),checking(b) W both
//	WriteCheck:                       R checking(a),savings(a) W checking(a)
//	Amalgamate:                       R savings(a),checking(a),checking(b)
//	                                  W savings(a),checking(a),checking(b)
//	GetBalance (query):               R savings(a),checking(a)
package smallbank

import (
	"encoding/binary"

	"github.com/nezha-dag/nezha/internal/types"
)

// Op identifies one of the six SmallBank transaction types.
type Op int

// The six SmallBank operations. The first five write; GetBalance is
// read-only, matching §VI-A ("the first five transactions conduct write
// operations on user accounts and the last one only conducts read
// operation").
const (
	OpTransactSavings Op = iota + 1
	OpDepositChecking
	OpSendPayment
	OpWriteCheck
	OpAmalgamate
	OpGetBalance
)

// NumOps is the number of operation types, for uniform selection.
const NumOps = 6

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpTransactSavings:
		return "transact_savings"
	case OpDepositChecking:
		return "deposit_checking"
	case OpSendPayment:
		return "send_payment"
	case OpWriteCheck:
		return "write_check"
	case OpAmalgamate:
		return "amalgamate"
	case OpGetBalance:
		return "get_balance"
	default:
		return "unknown"
	}
}

// IsWrite reports whether the operation writes account state.
func (o Op) IsWrite() bool { return o != OpGetBalance }

// ContractAddress is the deterministic address the SmallBank contract is
// deployed at in every reproduction network.
var ContractAddress = mustAddr()

func mustAddr() types.Address {
	h := types.HashBytes([]byte("contract/smallbank/v1"))
	a, err := types.AddressFromBytes(h[:types.AddressLen])
	if err != nil {
		panic(err) // unreachable: hash is always long enough
	}
	return a
}

// Storage tables. Slots are hashes of the (table, account) word pair — the
// MiniVM's SLOAD/SSTORE addressing discipline (see internal/vm), mirroring
// how a Solidity mapping hashes its keys.
const (
	// TableSavings addresses the savings-balance mapping.
	TableSavings uint64 = 1
	// TableChecking addresses the checking-balance mapping.
	TableChecking uint64 = 2
)

func slot(table, account uint64) types.Hash {
	var pre [16]byte
	binary.BigEndian.PutUint64(pre[:8], table)
	binary.BigEndian.PutUint64(pre[8:], account)
	return types.HashBytes(pre[:])
}

// SavingsKey returns the state key of an account's savings balance.
func SavingsKey(account uint64) types.Key {
	return types.StorageKey(ContractAddress, slot(TableSavings, account))
}

// CheckingKey returns the state key of an account's checking balance.
func CheckingKey(account uint64) types.Key {
	return types.StorageKey(ContractAddress, slot(TableChecking, account))
}

// Footprint returns the read and write key sets of an operation on the
// given accounts (acct2 participates only in SendPayment and Amalgamate).
// Keys are deduplicated, so acct1 == acct2 degenerates gracefully. This is
// the ground truth the VM execution must reproduce — tests cross-check the
// two.
func Footprint(op Op, acct1, acct2 uint64) (reads, writes []types.Key) {
	s1, c1 := SavingsKey(acct1), CheckingKey(acct1)
	c2 := CheckingKey(acct2)
	switch op {
	case OpTransactSavings:
		return []types.Key{s1}, []types.Key{s1}
	case OpDepositChecking:
		return []types.Key{c1}, []types.Key{c1}
	case OpSendPayment:
		ks := dedupKeys(c1, c2)
		return ks, ks
	case OpWriteCheck:
		return []types.Key{c1, s1}, []types.Key{c1}
	case OpAmalgamate:
		ks := dedupKeys(s1, c1, c2)
		return ks, ks
	case OpGetBalance:
		return []types.Key{s1, c1}, nil
	default:
		return nil, nil
	}
}

// PredictCall returns the state keys a SmallBank call payload will read —
// the contract's Footprint, recovered from the calldata alone, without
// executing anything. The pipeline's read-set prefetcher uses it to warm
// the MVCC version cache one epoch ahead; a malformed payload predicts
// nothing (the call will revert anyway).
func PredictCall(payload []byte) []types.Key {
	if len(payload) <= offAcct2+8 {
		return nil
	}
	op := Op(payload[0])
	if op < OpTransactSavings || op > OpGetBalance {
		return nil
	}
	a1 := binary.BigEndian.Uint64(payload[offAcct1:])
	a2 := binary.BigEndian.Uint64(payload[offAcct2:])
	reads, _ := Footprint(op, a1, a2)
	return reads
}

func dedupKeys(keys ...types.Key) []types.Key {
	out := keys[:0]
	for _, k := range keys {
		dup := false
		for _, seen := range out {
			if seen == k {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, k)
		}
	}
	return out
}
