package vm

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nezha-dag/nezha/internal/types"
)

func run(t *testing.T, a *Assembler, payload []byte, state MapReader) (*Result, error) {
	t.Helper()
	code, err := a.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if state == nil {
		state = MapReader{}
	}
	return Execute(code, Context{GasLimit: 100_000, Payload: payload}, state)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *Assembler)
		want  uint64
	}{
		{"add", func(a *Assembler) { a.Push(2).Push(3).Add() }, 5},
		{"sub", func(a *Assembler) { a.Push(7).Push(3).Sub() }, 4},
		{"sub wraps", func(a *Assembler) { a.Push(1).Push(2).Sub() }, ^uint64(0)},
		{"mul", func(a *Assembler) { a.Push(6).Push(7).Mul() }, 42},
		{"div", func(a *Assembler) { a.Push(42).Push(5).Div() }, 8},
		{"div by zero", func(a *Assembler) { a.Push(42).Push(0).Div() }, 0},
		{"mod", func(a *Assembler) { a.Push(42).Push(5).Mod() }, 2},
		{"mod zero", func(a *Assembler) { a.Push(42).Push(0).Mod() }, 0},
		{"lt true", func(a *Assembler) { a.Push(1).Push(2).Lt() }, 1},
		{"lt false", func(a *Assembler) { a.Push(2).Push(1).Lt() }, 0},
		{"gt", func(a *Assembler) { a.Push(2).Push(1).Gt() }, 1},
		{"eq", func(a *Assembler) { a.Push(5).Push(5).Eq() }, 1},
		{"iszero", func(a *Assembler) { a.Push(0).IsZero() }, 1},
		{"dup1", func(a *Assembler) { a.Push(9).Dup(1).Add() }, 18},
		{"dup2", func(a *Assembler) { a.Push(9).Push(1).Dup(2).Add() }, 10},
		{"swap1", func(a *Assembler) { a.Push(10).Push(3).Swap(1).Sub() }, ^uint64(0) - 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAssembler()
			tc.build(a)
			a.Return()
			res, err := run(t, a, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Returned || res.ReturnWord != tc.want {
				t.Fatalf("= %d (returned %v), want %d", res.ReturnWord, res.Returned, tc.want)
			}
		})
	}
}

func TestControlFlow(t *testing.T) {
	// if calldata[0] == 1 return 100 else return 200
	a := NewAssembler()
	a.CalldataByte(0).Push(1).Eq().JumpI("yes")
	a.Push(200).Return()
	a.Label("yes")
	a.Push(100).Return()

	res, err := run(t, a, []byte{1}, nil)
	if err != nil || res.ReturnWord != 100 {
		t.Fatalf("taken branch: %d, %v", res.ReturnWord, err)
	}
	res, err = run(t, a, []byte{9}, nil)
	if err != nil || res.ReturnWord != 200 {
		t.Fatalf("fallthrough: %d, %v", res.ReturnWord, err)
	}
}

func TestCalldataOutOfRangeReadsZero(t *testing.T) {
	a := NewAssembler()
	a.CalldataWord(200).Return()
	res, err := run(t, a, []byte{1, 2}, nil)
	if err != nil || res.ReturnWord != 0 {
		t.Fatalf("oob calldata = %d, %v", res.ReturnWord, err)
	}
	b := NewAssembler()
	b.CalldataSize().Return()
	res, err = run(t, b, []byte{1, 2, 3}, nil)
	if err != nil || res.ReturnWord != 3 {
		t.Fatalf("calldatasize = %d, %v", res.ReturnWord, err)
	}
}

func TestStorageRoundTripAndLogging(t *testing.T) {
	k := func(table, key uint64) types.Key {
		ex := &execution{ctx: Context{}}
		return ex.storageKey(table, key)
	}
	state := MapReader{k(1, 5): {0, 0, 0, 0, 0, 0, 0, 42}}

	a := NewAssembler()
	// v := sload(1, 5); sstore(2, 6, v+1); return sload(2, 6)
	a.Push(2).Push(6) // store target
	a.Push(1).Push(5).Sload()
	a.Push(1).Add()
	a.Sstore()
	a.Push(2).Push(6).Sload().Return()

	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res, execErr := Execute(code, Context{GasLimit: 10_000}, state)
	if execErr != nil {
		t.Fatal(execErr)
	}
	if res.ReturnWord != 43 {
		t.Fatalf("read-your-write = %d, want 43", res.ReturnWord)
	}
	// Logged reads: only the snapshot read of (1,5); the (2,6) read was
	// served by the write buffer and must NOT appear.
	if len(res.Reads) != 1 || res.Reads[0].Key != k(1, 5) {
		t.Fatalf("reads = %+v", res.Reads)
	}
	if string(res.Reads[0].Value) != string(state[k(1, 5)]) {
		t.Fatal("read value not snapshot value")
	}
	if len(res.Writes) != 1 || res.Writes[0].Key != k(2, 6) {
		t.Fatalf("writes = %+v", res.Writes)
	}
	if res.Writes[0].Value[7] != 43 {
		t.Fatalf("write value = %v", res.Writes[0].Value)
	}
	if res.GasUsed == 0 || res.GasUsed > 10_000 {
		t.Fatalf("gas used = %d", res.GasUsed)
	}
}

func TestMissingStorageReadsZero(t *testing.T) {
	a := NewAssembler()
	a.Push(1).Push(99).Sload().Return()
	res, err := run(t, a, nil, MapReader{})
	if err != nil || res.ReturnWord != 0 {
		t.Fatalf("missing slot = %d, %v", res.ReturnWord, err)
	}
	// The miss is still a logged read (value nil) — it is a conflict
	// surface.
	if len(res.Reads) != 1 || res.Reads[0].Value != nil {
		t.Fatalf("reads = %+v", res.Reads)
	}
}

func TestOutOfGas(t *testing.T) {
	a := NewAssembler()
	a.Label("loop").Push(1).Pop().Jump("loop")
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	res, execErr := Execute(code, Context{GasLimit: 500}, MapReader{})
	if !errors.Is(execErr, ErrOutOfGas) {
		t.Fatalf("err = %v", execErr)
	}
	if res.GasUsed != 500 {
		t.Fatalf("gas used = %d, want all 500", res.GasUsed)
	}
}

func TestRevert(t *testing.T) {
	a := NewAssembler()
	a.Revert()
	_, err := run(t, a, nil, nil)
	if !errors.Is(err, ErrRevert) {
		t.Fatalf("err = %v", err)
	}
}

func TestStackErrors(t *testing.T) {
	under := NewAssembler()
	under.Add()
	if _, err := run(t, under, nil, nil); !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("underflow err = %v", err)
	}

	over := NewAssembler()
	over.Push(1)
	over.Label("loop").Dup(1).Jump("loop")
	code, err := over.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(code, Context{GasLimit: 100_000}, MapReader{}); !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("overflow err = %v", err)
	}
}

func TestMalformedBytecode(t *testing.T) {
	cases := map[string][]byte{
		"unknown opcode": {0xee},
		"truncated push": {OpPush, 1, 2},
		"truncated jump": {OpJump, 0},
		"bad jump":       {OpJump, 0xff, 0xff},
	}
	for name, code := range cases {
		if _, err := Execute(code, Context{GasLimit: 1000}, MapReader{}); err == nil {
			t.Errorf("%s: executed", name)
		}
	}
}

func TestImplicitStop(t *testing.T) {
	// Falling off the end halts cleanly with nothing returned.
	res, err := Execute([]byte{OpPush, 0, 0, 0, 0, 0, 0, 0, 1}, Context{GasLimit: 10}, MapReader{})
	if err != nil || res.Returned {
		t.Fatalf("implicit stop: %v returned=%v", err, res.Returned)
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAssembler()
	a.Jump("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("undefined label accepted")
	}
	b := NewAssembler()
	b.Label("x").Label("x")
	if _, err := b.Assemble(); err == nil {
		t.Fatal("duplicate label accepted")
	}
	c := NewAssembler()
	c.Dup(9)
	if _, err := c.Assemble(); err == nil {
		t.Fatal("bad dup depth accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic")
		}
	}()
	d := NewAssembler()
	d.JumpI("missing")
	d.MustAssemble()
}

func TestExecutionDeterministic(t *testing.T) {
	a := NewAssembler()
	a.Push(1).Push(5) // store target
	a.Push(1).Push(5).Sload().Push(3).Add()
	a.Sstore()
	a.Stop()
	code := a.MustAssemble()
	state := MapReader{}
	r1, err1 := Execute(code, Context{GasLimit: 1000}, state)
	r2, err2 := Execute(code, Context{GasLimit: 1000}, state)
	if err1 != nil || err2 != nil {
		t.Fatalf("%v / %v", err1, err2)
	}
	if r1.GasUsed != r2.GasUsed || len(r1.Writes) != len(r2.Writes) {
		t.Fatal("executions diverge")
	}
	for i := range r1.Writes {
		if r1.Writes[i].Key != r2.Writes[i].Key || string(r1.Writes[i].Value) != string(r2.Writes[i].Value) {
			t.Fatal("write sets diverge")
		}
	}
}

// TestRandomBytecodeNeverPanics is the robustness property: arbitrary byte
// strings fed to the VM must produce an error or a result, never a panic —
// malformed programs are input, not bugs.
func TestRandomBytecodeNeverPanics(t *testing.T) {
	f := func(code, payload []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on code %x: %v", code, r)
				ok = false
			}
		}()
		res, _ := Execute(code, Context{GasLimit: 2000, Payload: payload}, MapReader{})
		return res != nil && res.GasUsed <= 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestValidOpcodeSoupNeverPanics skews the distribution toward real
// opcodes, exercising deeper paths than uniform bytes reach.
func TestValidOpcodeSoupNeverPanics(t *testing.T) {
	ops := []byte{
		OpStop, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLt, OpGt, OpEq,
		OpIsZero, OpAnd, OpOr, OpXor, OpNot, OpCalldataByte, OpCalldataWord,
		OpCalldataSize, OpPop, OpSload, OpSstore, OpJump, OpJumpI, OpPush,
		OpDup1, OpDup2, OpDup3, OpDup4, OpSwap1, OpSwap2, OpReturn, OpRevert,
	}
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 3000; trial++ {
		code := make([]byte, rng.Intn(64))
		for i := range code {
			if rng.Intn(4) == 0 {
				code[i] = byte(rng.Intn(256))
			} else {
				code[i] = ops[rng.Intn(len(ops))]
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on %x: %v", trial, code, r)
				}
			}()
			res, _ := Execute(code, Context{GasLimit: 5000}, MapReader{})
			if res == nil {
				t.Fatalf("trial %d: nil result", trial)
			}
		}()
	}
}
