// Package vm implements MiniVM, the reproduction's smart-contract execution
// engine. The paper's prototype runs Solidity contracts on the EVM with an
// instrumented read/write logger (§V); building the EVM is out of scope for
// a stdlib-only reproduction, so MiniVM substitutes a gas-metered,
// stack-based bytecode machine that exercises the same code path: contracts
// compiled to bytecode, speculative execution against a state snapshot, and
// a logger capturing the addresses and values each transaction reads and
// writes (the input to concurrency control).
//
// Substitutions vs the EVM (documented in DESIGN.md): 64-bit words instead
// of 256-bit, a reduced opcode set, and immediate jump targets. None of
// these affect what the paper measures — conflict structure is determined
// by storage access patterns, which MiniVM reproduces exactly.
//
// Storage addressing follows Solidity's mapping discipline: SLOAD/SSTORE
// take a (table, key) word pair, hashed together with the contract address
// into the global state key (types.StorageKey).
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/nezha-dag/nezha/internal/types"
)

// Opcodes. The numbering loosely follows the EVM where an analogue exists.
const (
	OpStop         byte = 0x00
	OpAdd          byte = 0x01
	OpSub          byte = 0x02
	OpMul          byte = 0x03
	OpDiv          byte = 0x04
	OpMod          byte = 0x05
	OpLt           byte = 0x10
	OpGt           byte = 0x11
	OpEq           byte = 0x12
	OpIsZero       byte = 0x13
	OpAnd          byte = 0x16
	OpOr           byte = 0x17
	OpXor          byte = 0x18
	OpNot          byte = 0x19
	OpCalldataByte byte = 0x35 // 1-byte immediate offset → byte
	OpCalldataWord byte = 0x36 // 1-byte immediate offset → big-endian u64
	OpCalldataSize byte = 0x37
	OpPop          byte = 0x50
	OpSload        byte = 0x54 // pops key, table → pushes value
	OpSstore       byte = 0x55 // pops value, key, table
	OpJump         byte = 0x56 // 2-byte immediate target
	OpJumpI        byte = 0x57 // 2-byte immediate target; pops condition
	OpPush         byte = 0x60 // 8-byte immediate
	OpDup1         byte = 0x80
	OpDup2         byte = 0x81
	OpDup3         byte = 0x82
	OpDup4         byte = 0x83
	OpSwap1        byte = 0x90
	OpSwap2        byte = 0x91
	OpReturn       byte = 0xf3 // pops 1 word, returned big-endian
	OpRevert       byte = 0xfd
)

// Execution errors. ErrRevert and ErrOutOfGas are "transaction failed"
// conditions (the transaction aborts with AbortExecution); the others
// indicate malformed bytecode.
var (
	ErrOutOfGas       = errors.New("vm: out of gas")
	ErrRevert         = errors.New("vm: execution reverted")
	ErrStackUnderflow = errors.New("vm: stack underflow")
	ErrStackOverflow  = errors.New("vm: stack overflow")
	ErrBadJump        = errors.New("vm: jump target out of range")
	ErrBadOpcode      = errors.New("vm: unknown opcode")
	ErrTruncated      = errors.New("vm: truncated immediate")
)

// Gas costs. Storage operations dominate, as on the EVM.
const (
	gasBase   = 1
	gasJump   = 2
	gasSload  = 20
	gasSstore = 50
)

const maxStack = 256

// StateReader is the snapshot interface speculative execution reads
// through; statedb.Snapshot satisfies it.
type StateReader interface {
	Get(k types.Key) ([]byte, error)
}

// Context carries the per-call environment.
type Context struct {
	// Contract is the address whose storage SLOAD/SSTORE touch.
	Contract types.Address
	// Caller is the transaction sender (informational).
	Caller types.Address
	// Payload is the calldata.
	Payload []byte
	// GasLimit bounds execution.
	GasLimit uint64
}

// Result is the outcome of one execution: the deduplicated, key-sorted read
// and write sets (reads carry snapshot values; a read served by the
// transaction's own earlier write is not recorded — it is not a conflict),
// gas consumed, and the return word if any.
type Result struct {
	Reads      []types.ReadEntry
	Writes     []types.WriteEntry
	GasUsed    uint64
	ReturnWord uint64
	Returned   bool
}

// Execute runs the program to completion. An error return of ErrRevert or
// ErrOutOfGas still carries a valid GasUsed in the result.
func Execute(program []byte, ctx Context, state StateReader) (*Result, error) {
	ex := &execution{
		program: program,
		ctx:     ctx,
		state:   state,
		gas:     ctx.GasLimit,
		written: make(map[types.Key][]byte),
		readVal: make(map[types.Key][]byte),
	}
	err := ex.run()
	res := &Result{
		GasUsed:    ctx.GasLimit - ex.gas,
		ReturnWord: ex.returnWord,
		Returned:   ex.returned,
	}
	// Deduplicated, key-sorted sets for deterministic downstream use.
	for k, v := range ex.readVal {
		res.Reads = append(res.Reads, types.ReadEntry{Key: k, Value: v})
	}
	sort.Slice(res.Reads, func(i, j int) bool { return res.Reads[i].Key.Less(res.Reads[j].Key) })
	for k, v := range ex.written {
		res.Writes = append(res.Writes, types.WriteEntry{Key: k, Value: v})
	}
	sort.Slice(res.Writes, func(i, j int) bool { return res.Writes[i].Key.Less(res.Writes[j].Key) })
	return res, err
}

type execution struct {
	program []byte
	ctx     Context
	state   StateReader
	gas     uint64

	pc    int
	stack []uint64

	// written is the transaction-local write buffer (read-your-writes);
	// readVal records first-read snapshot values per key.
	written map[types.Key][]byte
	readVal map[types.Key][]byte

	returnWord uint64
	returned   bool
}

func (ex *execution) charge(cost uint64) error {
	if ex.gas < cost {
		ex.gas = 0
		return ErrOutOfGas
	}
	ex.gas -= cost
	return nil
}

func (ex *execution) push(v uint64) error {
	if len(ex.stack) >= maxStack {
		return ErrStackOverflow
	}
	ex.stack = append(ex.stack, v)
	return nil
}

func (ex *execution) pop() (uint64, error) {
	if len(ex.stack) == 0 {
		return 0, ErrStackUnderflow
	}
	v := ex.stack[len(ex.stack)-1]
	ex.stack = ex.stack[:len(ex.stack)-1]
	return v, nil
}

// storageKey maps a (table, key) pair onto the global state key.
func (ex *execution) storageKey(table, key uint64) types.Key {
	var slotPre [16]byte
	binary.BigEndian.PutUint64(slotPre[:8], table)
	binary.BigEndian.PutUint64(slotPre[8:], key)
	slot := types.HashBytes(slotPre[:])
	return types.StorageKey(ex.ctx.Contract, slot)
}

func (ex *execution) imm(n int) ([]byte, error) {
	if ex.pc+n > len(ex.program) {
		return nil, ErrTruncated
	}
	b := ex.program[ex.pc : ex.pc+n]
	ex.pc += n
	return b, nil
}

func (ex *execution) run() error {
	for ex.pc < len(ex.program) {
		op := ex.program[ex.pc]
		ex.pc++
		if err := ex.step(op); err != nil {
			return err
		}
		if ex.returned {
			return nil
		}
	}
	return nil // falling off the end is an implicit STOP
}

func (ex *execution) step(op byte) error {
	switch op {
	case OpStop:
		ex.returned = true
		return nil
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpLt, OpGt, OpEq, OpAnd, OpOr, OpXor:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		right, err := ex.pop()
		if err != nil {
			return err
		}
		left, err := ex.pop()
		if err != nil {
			return err
		}
		return ex.push(binop(op, left, right))
	case OpIsZero, OpNot:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		v, err := ex.pop()
		if err != nil {
			return err
		}
		if op == OpIsZero {
			return ex.push(boolWord(v == 0))
		}
		return ex.push(^v)
	case OpCalldataByte:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		off, err := ex.imm(1)
		if err != nil {
			return err
		}
		i := int(off[0])
		var v uint64
		if i < len(ex.ctx.Payload) {
			v = uint64(ex.ctx.Payload[i])
		}
		return ex.push(v)
	case OpCalldataWord:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		off, err := ex.imm(1)
		if err != nil {
			return err
		}
		i := int(off[0])
		var v uint64
		if i+8 <= len(ex.ctx.Payload) {
			v = binary.BigEndian.Uint64(ex.ctx.Payload[i : i+8])
		}
		return ex.push(v)
	case OpCalldataSize:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		return ex.push(uint64(len(ex.ctx.Payload)))
	case OpPop:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		_, err := ex.pop()
		return err
	case OpSload:
		if err := ex.charge(gasSload); err != nil {
			return err
		}
		key, err := ex.pop()
		if err != nil {
			return err
		}
		table, err := ex.pop()
		if err != nil {
			return err
		}
		sk := ex.storageKey(table, key)
		raw, err := ex.load(sk)
		if err != nil {
			return err
		}
		var v uint64
		if len(raw) == 8 {
			v = binary.BigEndian.Uint64(raw)
		}
		return ex.push(v)
	case OpSstore:
		if err := ex.charge(gasSstore); err != nil {
			return err
		}
		value, err := ex.pop()
		if err != nil {
			return err
		}
		key, err := ex.pop()
		if err != nil {
			return err
		}
		table, err := ex.pop()
		if err != nil {
			return err
		}
		sk := ex.storageKey(table, key)
		ex.written[sk] = binary.BigEndian.AppendUint64(nil, value)
		return nil
	case OpJump:
		if err := ex.charge(gasJump); err != nil {
			return err
		}
		tgt, err := ex.imm(2)
		if err != nil {
			return err
		}
		return ex.jump(int(binary.BigEndian.Uint16(tgt)))
	case OpJumpI:
		if err := ex.charge(gasJump); err != nil {
			return err
		}
		tgt, err := ex.imm(2)
		if err != nil {
			return err
		}
		cond, err := ex.pop()
		if err != nil {
			return err
		}
		if cond != 0 {
			return ex.jump(int(binary.BigEndian.Uint16(tgt)))
		}
		return nil
	case OpPush:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		w, err := ex.imm(8)
		if err != nil {
			return err
		}
		return ex.push(binary.BigEndian.Uint64(w))
	case OpDup1, OpDup2, OpDup3, OpDup4:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		depth := int(op-OpDup1) + 1
		if len(ex.stack) < depth {
			return ErrStackUnderflow
		}
		return ex.push(ex.stack[len(ex.stack)-depth])
	case OpSwap1, OpSwap2:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		depth := int(op-OpSwap1) + 1
		if len(ex.stack) < depth+1 {
			return ErrStackUnderflow
		}
		top := len(ex.stack) - 1
		ex.stack[top], ex.stack[top-depth] = ex.stack[top-depth], ex.stack[top]
		return nil
	case OpReturn:
		if err := ex.charge(gasBase); err != nil {
			return err
		}
		v, err := ex.pop()
		if err != nil {
			return err
		}
		ex.returnWord = v
		ex.returned = true
		return nil
	case OpRevert:
		return ErrRevert
	default:
		return fmt.Errorf("%w: 0x%02x at pc %d", ErrBadOpcode, op, ex.pc-1)
	}
}

// load reads a key through the write buffer, recording a snapshot read only
// when the buffer misses.
func (ex *execution) load(k types.Key) ([]byte, error) {
	if v, ok := ex.written[k]; ok {
		return v, nil
	}
	if v, ok := ex.readVal[k]; ok {
		return v, nil
	}
	v, err := ex.state.Get(k)
	if err != nil {
		return nil, fmt.Errorf("vm: state read: %w", err)
	}
	ex.readVal[k] = v
	return v, nil
}

func (ex *execution) jump(target int) error {
	if target < 0 || target > len(ex.program) {
		return ErrBadJump
	}
	ex.pc = target
	return nil
}

func binop(op byte, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case OpLt:
		return boolWord(a < b)
	case OpGt:
		return boolWord(a > b)
	case OpEq:
		return boolWord(a == b)
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	default:
		panic("vm: binop on non-binary opcode")
	}
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MapReader adapts a plain map to StateReader for tests and benchmarks.
type MapReader map[types.Key][]byte

// Get implements StateReader.
func (m MapReader) Get(k types.Key) ([]byte, error) { return m[k], nil }
