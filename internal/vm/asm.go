package vm

import (
	"encoding/binary"
	"fmt"
)

// Assembler builds MiniVM bytecode with symbolic labels, the compilation
// aid the contract packages use in place of a Solidity compiler.
//
//	a := NewAssembler()
//	a.CalldataByte(0).Push(1).Eq().JumpI("handler")
//	a.Revert()
//	a.Label("handler")
//	...
//	code, err := a.Assemble()
type Assembler struct {
	code   []byte
	labels map[string]int
	// fixups are 2-byte holes to patch with label offsets.
	fixups []fixup
	err    error
}

type fixup struct {
	pos   int
	label string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int)}
}

// Label binds name to the current position.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup && a.err == nil {
		a.err = fmt.Errorf("vm: duplicate label %q", name)
	}
	a.labels[name] = len(a.code)
	return a
}

func (a *Assembler) op(b byte) *Assembler {
	a.code = append(a.code, b)
	return a
}

// Push emits PUSH with an 8-byte immediate.
func (a *Assembler) Push(v uint64) *Assembler {
	a.code = append(a.code, OpPush)
	a.code = binary.BigEndian.AppendUint64(a.code, v)
	return a
}

// CalldataByte emits CALLDATAB with a 1-byte offset.
func (a *Assembler) CalldataByte(off byte) *Assembler {
	a.code = append(a.code, OpCalldataByte, off)
	return a
}

// CalldataWord emits CALLDATAW with a 1-byte offset.
func (a *Assembler) CalldataWord(off byte) *Assembler {
	a.code = append(a.code, OpCalldataWord, off)
	return a
}

// CalldataSize emits CALLDATASIZE.
func (a *Assembler) CalldataSize() *Assembler { return a.op(OpCalldataSize) }

// Arithmetic and logic.

// Add emits ADD.
func (a *Assembler) Add() *Assembler { return a.op(OpAdd) }

// Sub emits SUB (left - right, wrapping).
func (a *Assembler) Sub() *Assembler { return a.op(OpSub) }

// Mul emits MUL.
func (a *Assembler) Mul() *Assembler { return a.op(OpMul) }

// Div emits DIV (division by zero yields zero).
func (a *Assembler) Div() *Assembler { return a.op(OpDiv) }

// Mod emits MOD (mod zero yields zero).
func (a *Assembler) Mod() *Assembler { return a.op(OpMod) }

// Lt emits LT (left < right).
func (a *Assembler) Lt() *Assembler { return a.op(OpLt) }

// Gt emits GT.
func (a *Assembler) Gt() *Assembler { return a.op(OpGt) }

// Eq emits EQ.
func (a *Assembler) Eq() *Assembler { return a.op(OpEq) }

// IsZero emits ISZERO.
func (a *Assembler) IsZero() *Assembler { return a.op(OpIsZero) }

// And emits AND.
func (a *Assembler) And() *Assembler { return a.op(OpAnd) }

// Or emits OR.
func (a *Assembler) Or() *Assembler { return a.op(OpOr) }

// Xor emits XOR.
func (a *Assembler) Xor() *Assembler { return a.op(OpXor) }

// Not emits NOT (bitwise complement).
func (a *Assembler) Not() *Assembler { return a.op(OpNot) }

// Stack manipulation.

// Pop emits POP.
func (a *Assembler) Pop() *Assembler { return a.op(OpPop) }

// Dup emits DUPn for depth 1–4.
func (a *Assembler) Dup(depth int) *Assembler {
	if depth < 1 || depth > 4 {
		if a.err == nil {
			a.err = fmt.Errorf("vm: DUP depth %d out of range", depth)
		}
		return a
	}
	return a.op(OpDup1 + byte(depth-1))
}

// Swap emits SWAPn for depth 1–2.
func (a *Assembler) Swap(depth int) *Assembler {
	if depth < 1 || depth > 2 {
		if a.err == nil {
			a.err = fmt.Errorf("vm: SWAP depth %d out of range", depth)
		}
		return a
	}
	return a.op(OpSwap1 + byte(depth-1))
}

// Storage.

// Sload emits SLOAD.
func (a *Assembler) Sload() *Assembler { return a.op(OpSload) }

// Sstore emits SSTORE.
func (a *Assembler) Sstore() *Assembler { return a.op(OpSstore) }

// Control flow.

// Jump emits JUMP to a label.
func (a *Assembler) Jump(label string) *Assembler {
	a.code = append(a.code, OpJump)
	a.fixups = append(a.fixups, fixup{pos: len(a.code), label: label})
	a.code = append(a.code, 0, 0)
	return a
}

// JumpI emits JUMPI to a label (jumps when the popped word is nonzero).
func (a *Assembler) JumpI(label string) *Assembler {
	a.code = append(a.code, OpJumpI)
	a.fixups = append(a.fixups, fixup{pos: len(a.code), label: label})
	a.code = append(a.code, 0, 0)
	return a
}

// Stop emits STOP.
func (a *Assembler) Stop() *Assembler { return a.op(OpStop) }

// Return emits RETURN.
func (a *Assembler) Return() *Assembler { return a.op(OpReturn) }

// Revert emits REVERT.
func (a *Assembler) Revert() *Assembler { return a.op(OpRevert) }

// Assemble patches label references and returns the bytecode.
func (a *Assembler) Assemble() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	if len(a.code) > 1<<16 {
		return nil, fmt.Errorf("vm: program of %d bytes exceeds 16-bit address space", len(a.code))
	}
	out := append([]byte(nil), a.code...)
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("vm: undefined label %q", f.label)
		}
		binary.BigEndian.PutUint16(out[f.pos:], uint16(target))
	}
	return out, nil
}

// MustAssemble panics on assembly errors; for statically-known programs.
func (a *Assembler) MustAssemble() []byte {
	code, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}
