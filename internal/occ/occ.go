// Package occ implements the plain optimistic-concurrency-control baseline
// of the paper's Table II — the scheme Hyperledger Fabric's
// validate-and-commit phase applies, with no conflict graph at all: in
// block order, a transaction commits unless something it read was already
// written by an earlier committed transaction of the same epoch
// (first-committer-wins). The paper's motivation cites this scheme's abort
// rate — "more than 40%" under contention [Chacko et al., SIGMOD'21] — as
// the cost of avoiding ordering work; the occ-abort experiment measures
// exactly that against Nezha on identical workloads.
package occ

import (
	"time"

	"github.com/nezha-dag/nezha/internal/types"
)

// Scheduler is the OCC baseline. Stateless and safe for concurrent use.
type Scheduler struct{}

var _ types.Scheduler = (*Scheduler)(nil)

// NewScheduler returns the OCC baseline.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Name implements types.Scheduler.
func (s *Scheduler) Name() string { return "occ" }

// Schedule implements types.Scheduler: one pass in transaction order,
// aborting any transaction whose read set intersects the writes committed
// before it. Committed transactions get strictly increasing sequence
// numbers (serial commit, like the CG baseline — plain OCC has no
// commit-concurrency analysis either).
//
// A transaction's own earlier write does not invalidate its read: all reads
// happened against the epoch snapshot, so the conflict is with *other*
// writers only.
func (s *Scheduler) Schedule(sims []*types.SimResult) (*types.Schedule, types.PhaseBreakdown, error) {
	var pb types.PhaseBreakdown
	start := time.Now()

	sched := types.NewSchedule()
	written := make(map[types.Key]types.TxID)
	seq := types.Seq(1)
	for _, sim := range sims {
		id := sim.Tx.ID
		conflict := false
		for _, r := range sim.Reads {
			if prev, dirty := written[r.Key]; dirty && prev != id {
				conflict = true
				break
			}
		}
		if conflict {
			sched.Abort(id, types.AbortUnserializable)
			continue
		}
		for _, w := range sim.Writes {
			if _, taken := written[w.Key]; !taken {
				written[w.Key] = id
			}
		}
		sched.Commit(id, seq)
		seq++
	}
	sched.NormalizeAborts()
	pb.Sort = time.Since(start)
	return sched, pb, nil
}
