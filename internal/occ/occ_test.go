package occ

import (
	"math/rand"
	"testing"

	"github.com/nezha-dag/nezha/internal/core"
	"github.com/nezha-dag/nezha/internal/types"
)

func key(n byte) types.Key {
	var k types.Key
	k[0] = n
	return k
}

func simRW(id types.TxID, reads, writes []types.Key) *types.SimResult {
	sim := &types.SimResult{Tx: &types.Transaction{ID: id}}
	for _, k := range reads {
		sim.Reads = append(sim.Reads, types.ReadEntry{Key: k})
	}
	for _, k := range writes {
		sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: []byte{byte(id)}})
	}
	return sim
}

func TestOCCFirstCommitterWins(t *testing.T) {
	k := key(1)
	sims := []*types.SimResult{
		simRW(0, nil, []types.Key{k}),                 // writes k, commits
		simRW(1, []types.Key{k}, []types.Key{key(2)}), // reads k after the write: aborts
		simRW(2, []types.Key{key(3)}, nil),            // untouched: commits
	}
	sched, pb, err := NewScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.IsCommitted(0) || sched.IsCommitted(1) || !sched.IsCommitted(2) {
		t.Fatalf("commit set wrong: %+v", sched.Seqs)
	}
	if sched.Aborted[0].Reason != types.AbortUnserializable {
		t.Fatalf("reason = %v", sched.Aborted[0].Reason)
	}
	if pb.Total() <= 0 {
		t.Fatal("phase breakdown missing")
	}
}

func TestOCCOwnWriteDoesNotAbort(t *testing.T) {
	k := key(1)
	// A transaction that reads and writes the same key conflicts with
	// nobody but itself.
	sims := []*types.SimResult{simRW(0, []types.Key{k}, []types.Key{k})}
	sched, _, err := NewScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.IsCommitted(0) {
		t.Fatal("self read-write aborted")
	}
}

func TestOCCBlindWritesAllCommit(t *testing.T) {
	// Fabric-style OCC aborts on stale reads only: blind writers to one
	// key all commit (last write wins by order).
	k := key(1)
	sims := []*types.SimResult{
		simRW(0, nil, []types.Key{k}),
		simRW(1, nil, []types.Key{k}),
		simRW(2, nil, []types.Key{k}),
	}
	sched, _, err := NewScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if sched.AbortedCount() != 0 {
		t.Fatalf("blind writes aborted: %+v", sched.Aborted)
	}
	if err := core.VerifySchedule(nil, sims, sched); err != nil {
		t.Fatal(err)
	}
}

func TestOCCSchedulesVerifyOnRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := NewScheduler()
	for trial := 0; trial < 40; trial++ {
		snapshot := make(map[types.Key][]byte)
		nKeys := 3 + rng.Intn(20)
		var sims []*types.SimResult
		for i := 0; i < 60; i++ {
			sim := &types.SimResult{Tx: &types.Transaction{ID: types.TxID(i)}}
			seenR := map[types.Key]bool{}
			for r := 0; r < rng.Intn(3); r++ {
				k := types.KeyFromUint64(uint64(rng.Intn(nKeys)))
				if seenR[k] {
					continue
				}
				seenR[k] = true
				snapshot[k] = nil
				sim.Reads = append(sim.Reads, types.ReadEntry{Key: k})
			}
			seenW := map[types.Key]bool{}
			for w := 0; w < 1+rng.Intn(2); w++ {
				k := types.KeyFromUint64(uint64(rng.Intn(nKeys)))
				if seenW[k] {
					continue
				}
				seenW[k] = true
				sim.Writes = append(sim.Writes, types.WriteEntry{Key: k, Value: []byte{byte(i)}})
			}
			sims = append(sims, sim)
		}
		sched, _, err := s.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.VerifySchedule(snapshot, sims, sched); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sched.CommittedCount()+sched.AbortedCount() != len(sims) {
			t.Fatalf("trial %d: accounting wrong", trial)
		}
	}
}

// TestOCCAbortsMoreThanNezha is the motivating comparison (§I, Challenge 2):
// on an identical contended workload, plain OCC must abort strictly more
// than Nezha, which orders instead of discarding.
func TestOCCAbortsMoreThanNezha(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	nezha := core.MustNewScheduler(core.DefaultConfig())
	occTotal, nezhaTotal := 0, 0
	for trial := 0; trial < 20; trial++ {
		var sims []*types.SimResult
		for i := 0; i < 100; i++ {
			sims = append(sims, simRW(types.TxID(i),
				[]types.Key{key(byte(rng.Intn(8)))},
				[]types.Key{key(byte(rng.Intn(8)))}))
		}
		o, _, err := NewScheduler().Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		nz, _, err := nezha.Schedule(sims)
		if err != nil {
			t.Fatal(err)
		}
		occTotal += o.AbortedCount()
		nezhaTotal += nz.AbortedCount()
	}
	if occTotal <= nezhaTotal {
		t.Fatalf("OCC aborts (%d) not above Nezha (%d) under contention", occTotal, nezhaTotal)
	}
}

func TestOCCDeterministicAndEmpty(t *testing.T) {
	s := NewScheduler()
	out, _, err := s.Schedule(nil)
	if err != nil || out.CommittedCount() != 0 {
		t.Fatalf("empty: %v", err)
	}
	sims := []*types.SimResult{
		simRW(0, []types.Key{key(1)}, []types.Key{key(2)}),
		simRW(1, []types.Key{key(2)}, []types.Key{key(1)}),
	}
	a, _, _ := s.Schedule(sims)
	b, _, _ := s.Schedule(sims)
	if !a.Equal(b) {
		t.Fatal("OCC not deterministic")
	}
	if s.Name() != "occ" {
		t.Fatal("name")
	}
}
