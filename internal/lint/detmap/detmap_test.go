package detmap_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis/analysistest"
	"github.com/nezha-dag/nezha/internal/lint/detmap"
)

func TestDetmap(t *testing.T) {
	// Package a is critical (flagged), package b is not (silent).
	lint.CriticalPackages = append(lint.CriticalPackages, "a")
	analysistest.Run(t, analysistest.TestData(), detmap.Analyzer, "a", "b")
}
