// Package detmap flags nondeterministic iteration in determinism-critical
// packages (lint.CriticalPackages): Nezha's safety argument is that every
// replica derives a byte-identical schedule from the same snapshot
// (Algorithms 1–2 of the paper), and Go's two ambient sources of
// per-process iteration order — map ranges and multi-way selects — are
// exactly what breaks that silently.
//
// Flagged, in critical packages only:
//
//   - `for ... := range m` where m is a map, and ranges over
//     maps.Keys/maps.Values/maps.All iterators, unless the loop provably
//     feeds a sort: some slice or map collector the body appends to or
//     index-assigns is later (in the same function, after the loop) passed
//     to a sort or slices call. That is the canonical deterministic idiom:
//     collect, sort, then use.
//   - `select` with two or more ready communication cases: the runtime
//     picks uniformly at random.
//
// Escape hatch, for iteration that is provably order-insensitive (e.g.
// accumulation into a commutative counter, or filling distinct slots of a
// pre-sized slice):
//
//	for _, v := range m { //nezha:nondeterminism-ok sum is commutative
//
// The annotation must carry a reason; an empty reason is itself reported.
// The grammar is documented in internal/lint/doc.go and DESIGN.md.
package detmap
