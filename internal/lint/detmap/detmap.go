package detmap

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis"
)

// Analyzer flags unordered map iteration and multi-way selects in
// determinism-critical packages. See doc.go for the invariant.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flag unordered map ranges and multi-way selects in determinism-critical packages",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if !lint.IsCritical(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, file, fn.Body)
		}
	}
	return nil, nil
}

// checkFunc walks one function body (FuncLits included: a sort inside a
// closure can only order what the closure collected).
func checkFunc(pass *analysis.Pass, file *ast.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if !unorderedRange(pass, n) {
				return true
			}
			if annotated(pass, file, n.Pos()) {
				return true
			}
			if feedsSort(pass, body, n) {
				return true
			}
			pass.Reportf(n.Pos(), "unordered map iteration in determinism-critical package %s; collect and sort the keys, or justify with //nezha:nondeterminism-ok <reason>", pass.Pkg.Path())
		case *ast.SelectStmt:
			ready := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					ready++
				}
			}
			if ready < 2 {
				return true
			}
			if annotated(pass, file, n.Pos()) {
				return true
			}
			pass.Reportf(n.Pos(), "select with %d communication cases picks one at random in determinism-critical package %s; use a deterministic drain order, or justify with //nezha:nondeterminism-ok <reason>", ready, pass.Pkg.Path())
		}
		return true
	})
}

// annotated handles the escape hatch, reporting an annotation whose reason
// is missing.
func annotated(pass *analysis.Pass, file *ast.File, pos token.Pos) bool {
	ann := lint.FindAnnotation(pass.Fset, file, pos, "nondeterminism")
	if !ann.Found {
		return false
	}
	if ann.Reason == "" {
		pass.Reportf(ann.Pos, "nezha:nondeterminism-ok annotation needs a reason")
	}
	return true
}

// unorderedRange reports whether rs iterates in runtime-randomized order:
// a map, or a maps.Keys/Values/All iterator over one.
func unorderedRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	call, ok := rs.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "maps" {
		return false
	}
	switch sel.Sel.Name {
	case "Keys", "Values", "All":
		return true
	}
	return false
}

// feedsSort reports whether the loop collects into something that is
// sorted later in the same function: the canonical deterministic idiom.
func feedsSort(pass *analysis.Pass, body *ast.BlockStmt, rs *ast.RangeStmt) bool {
	// Collectors: objects appended to or index-assigned inside the body.
	collectors := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					addCollector(pass, collectors, idx.X)
				}
				// x = append(x, ...)
				if i < len(n.Rhs) {
					if call, ok := n.Rhs[i].(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
							addCollector(pass, collectors, lhs)
						}
					}
				}
			}
		}
		return true
	})
	if len(collectors) == 0 {
		return false
	}
	// A sort/slices call after the loop naming any collector.
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted || n == nil || n.End() <= rs.End() {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		switch pkg.Imported().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if aid, ok := a.(*ast.Ident); ok && collectors[pass.TypesInfo.Uses[aid]] {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

// addCollector records the root object of an assignable expression.
func addCollector(pass *analysis.Pass, set map[types.Object]bool, e ast.Expr) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				set[obj] = true
			} else if obj := pass.TypesInfo.Defs[x]; obj != nil {
				set[obj] = true
			}
			return
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}
