// Package a is detmap's positive corpus: it is appended to
// lint.CriticalPackages by the test, so every unordered iteration here
// must be flagged unless it feeds a sort or carries an annotation.
package a

import (
	"maps"
	"slices"
	"sort"
)

func plain(m map[string]int) {
	for k := range m { // want `unordered map iteration in determinism-critical package a`
		_ = k
	}
}

func iterator(m map[string]int) {
	for k := range maps.Keys(m) { // want `unordered map iteration`
		_ = k
	}
}

func collected(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collected and sorted below: the blessed idiom
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectedSlices(m map[string]int) []string {
	var keys []string
	for k := range m { // slices.Sort counts too
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func collectedButNotSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `unordered map iteration`
		keys = append(keys, k)
	}
	return keys
}

func annotated(m map[string]int) int {
	total := 0
	for _, v := range m { //nezha:nondeterminism-ok summing ints is commutative
		total += v
	}
	return total
}

func racySelect(a, b chan int) {
	select { // want `select with 2 communication cases`
	case <-a:
	case <-b:
	}
}

func annotatedSelect(a, b chan int) {
	//nezha:nondeterminism-ok both arms drain into the same commutative sink
	select {
	case <-a:
	case <-b:
	}
}

func timeoutSelect(a chan int) {
	select { // one comm case plus default: no runtime coin-flip
	case <-a:
	default:
	}
}

func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs { // slices iterate in order
		total += v
	}
	return total
}
