// Package b is detmap's negative corpus: the same shapes as package a,
// but b is not in lint.CriticalPackages, so nothing here is flagged.
package b

func plain(m map[string]int) {
	for k := range m {
		_ = k
	}
}

func racySelect(a, b chan int) {
	select {
	case <-a:
	case <-b:
	}
}
