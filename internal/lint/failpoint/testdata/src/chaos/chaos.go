// Package chaos may arm failpoints (path suffix "chaos"), but names must
// still come from the registry.
package chaos

import "fail"

func arm() {
	fail.Enable(fail.Registered, fail.Spec{})
	fail.Seed(1)
	fail.Disable(fail.Registered)
	fail.Enable("pkg/unknown", fail.Spec{}) // want `unregistered failpoint name "pkg/unknown"`
}
