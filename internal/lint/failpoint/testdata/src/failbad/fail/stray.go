package fail

const Stray Name = "pkg/stray" // want `fail.Name constant Stray declared in stray.go; the registry is names.go`
