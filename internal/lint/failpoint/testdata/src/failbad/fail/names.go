// Package fail (under failbad/) is the registry-violation corpus: every
// way a Name declaration can break the rules.
package fail

type Name string

const (
	GoodName Name = "pkg/good"
	DupName  Name = "pkg/good" // want `duplicate failpoint name "pkg/good" \(already registered as GoodName\)`
	BadCase  Name = "Pkg/Bad"  // want `does not match`
	BadChars Name = "pkg_bad"  // want `does not match`
)
