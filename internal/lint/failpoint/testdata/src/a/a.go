// Package a is a production-shaped consumer of the fail stub: site names
// must be registered constants and arming helpers are off limits.
package a

import "fail"

var sites = []fail.Name{fail.Registered, fail.Other}

func hits(dyn string) {
	_ = fail.Hit(fail.Registered)         // registered constant: fine
	_ = fail.Hit("pkg/registered")        // literal equal to a registered value: fine
	_ = fail.Hit("pkg/unknown")           // want `unregistered failpoint name "pkg/unknown"`
	_ = fail.HitTag(sites[0], "tag")      // typed fail.Name expression: construction sites are checked
	_ = fail.Hit(fail.Name(dyn))          // want `fail.Name conversion from a non-constant`
	name := fail.Name("pkg/also-unknown") // want `unregistered failpoint name "pkg/also-unknown"`
	_ = name
	_ = fail.Drop(fail.Other, "peer") // registered constant: fine
}

func arms() {
	fail.Enable(fail.Registered, fail.Spec{}) // want `armed-only helper fail\.Enable`
	fail.Reset()                              // want `armed-only helper fail\.Reset`
}
