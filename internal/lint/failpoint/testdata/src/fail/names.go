package fail

// Name is a registered failpoint site; the stub mirrors internal/fail.
type Name string

const (
	Registered Name = "pkg/registered"
	Other      Name = "pkg/other"
)
