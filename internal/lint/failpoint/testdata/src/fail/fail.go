// Package fail is a hermetic stub of internal/fail: same exported shape,
// no behavior. The analyzer keys on the package name and path suffix, so
// the tests never depend on the real module.
package fail

type Spec struct{ Mode int }

func Hit(name Name) error                { return nil }
func HitTag(name Name, tag string) error { return nil }
func Drop(name Name, tag string) bool    { return false }
func Enable(name Name, s Spec)           {}
func Disable(name Name)                  {}
func Reset()                             {}
func Seed(seed int64)                    {}
