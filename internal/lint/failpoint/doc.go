// Package failpoint enforces the failpoint registry discipline around
// internal/fail: the chaos harness can only break what it can name, so
// the full inventory of sites must live in one reviewable file and every
// call site must use it.
//
// Rules:
//
//   - Inside the fail package: every fail.Name constant must be declared
//     in names.go (the central registry), match the site grammar
//     ^[a-z0-9-]+(/[a-z0-9-]+)*$, and be unique — two constants with one
//     string value would silently alias two sites.
//   - Everywhere else: the name passed to fail.Hit, fail.HitTag,
//     fail.Drop, fail.Enable, and fail.Disable must be a registered
//     constant (or a compile-time string equal to one). Non-constant
//     names are allowed only when already typed fail.Name — and every
//     fail.Name(...) conversion from a literal is checked against the
//     registry, so a dynamic name can only be laundered from registered
//     values.
//   - Armed-only helpers (fail.Enable, fail.Disable, fail.Reset,
//     fail.Seed) must not appear outside _test.go files or the
//     fault-injection harnesses (internal/chaos, internal/stress):
//     production code hits failpoints, it never arms them. nezha-vet
//     analyzes non-test files, so _test.go usage is implicitly allowed.
//
// There is deliberately no annotation escape hatch: an unregistered
// failpoint is never benign — registering it is a one-line diff.
package failpoint
