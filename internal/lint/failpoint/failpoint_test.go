package failpoint_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/lint/analysis/analysistest"
	"github.com/nezha-dag/nezha/internal/lint/failpoint"
)

func TestFailpoint(t *testing.T) {
	// fail:         a clean registry (negative case for checkRegistry).
	// failbad/fail: every registry violation.
	// a:            production call sites, good and bad.
	// chaos:        arming allowed, name discipline still enforced.
	analysistest.Run(t, analysistest.TestData(), failpoint.Analyzer,
		"fail", "failbad/fail", "a", "chaos")
}
