package failpoint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"github.com/nezha-dag/nezha/internal/lint/analysis"
)

// Analyzer enforces the failpoint registry discipline. See doc.go.
var Analyzer = &analysis.Analyzer{
	Name: "failpoint",
	Doc:  "require registered fail.Name constants at failpoint sites and confine arming helpers",
	Run:  run,
}

// nameArgFuncs are the fail package functions whose first argument is a
// site name.
var nameArgFuncs = map[string]bool{
	"Hit": true, "HitTag": true, "Drop": true, "Enable": true, "Disable": true,
}

// armedOnly are the helpers production code must never call.
var armedOnly = map[string]bool{
	"Enable": true, "Disable": true, "Reset": true, "Seed": true,
}

// nameRE is the site grammar: slash-separated lower-case segments.
var nameRE = regexp.MustCompile(`^[a-z0-9-]+(/[a-z0-9-]+)*$`)

// RegistryFile is where Name constants must live inside the fail package.
const RegistryFile = "names.go"

func run(pass *analysis.Pass) (any, error) {
	if isFailPkg(pass.Pkg.Path()) && pass.Pkg.Name() == "fail" {
		checkRegistry(pass)
		return nil, nil
	}
	failPkg := importedFailPkg(pass.Pkg)
	if failPkg == nil {
		return nil, nil
	}
	registered := registeredNames(failPkg)
	armingAllowed := isHarnessPkg(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() != failPkg {
				return true
			}
			switch o := obj.(type) {
			case *types.TypeName:
				// A fail.Name(x) conversion: the laundering point for
				// dynamic names — x must be a registered compile-time value.
				if o.Name() != "Name" || len(call.Args) != 1 {
					return true
				}
				checkNameExpr(pass, registered, call.Args[0], true)
			case *types.Func:
				if armedOnly[o.Name()] && !armingAllowed {
					pass.Reportf(call.Pos(), "armed-only helper fail.%s outside _test.go and the harness packages (internal/chaos, internal/stress); production code hits failpoints, it never arms them", o.Name())
				}
				if nameArgFuncs[o.Name()] && len(call.Args) > 0 {
					checkNameExpr(pass, registered, call.Args[0], false)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkNameExpr validates one site-name expression. conversion marks a
// fail.Name(x) argument, where a non-constant x is itself the violation.
func checkNameExpr(pass *analysis.Pass, registered map[string]string, e ast.Expr, conversion bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		v := constant.StringVal(tv.Value)
		if _, ok := registered[v]; !ok {
			pass.Reportf(e.Pos(), "unregistered failpoint name %q; declare it as a fail.Name constant in internal/fail/%s", v, RegistryFile)
		}
		return
	}
	if conversion {
		pass.Reportf(e.Pos(), "fail.Name conversion from a non-constant; use a registered constant from internal/fail/%s", RegistryFile)
		return
	}
	// Not a compile-time constant: only acceptable when the expression is
	// already typed fail.Name (its construction sites are checked above).
	if named, ok := tv.Type.(*types.Named); ok && named.Obj().Name() == "Name" && named.Obj().Pkg() != nil && isFailPkg(named.Obj().Pkg().Path()) {
		return
	}
	pass.Reportf(e.Pos(), "failpoint name must be a registered fail.Name constant from internal/fail/%s, not a dynamic %s", RegistryFile, tv.Type)
}

// checkRegistry runs inside the fail package: Name constants live in
// names.go, match the grammar, and are unique.
func checkRegistry(pass *analysis.Pass) {
	type decl struct {
		name  string
		value string
		file  string
		pos   ast.Node
	}
	var decls []decl
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Package).Filename)
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					c, ok := pass.TypesInfo.Defs[id].(*types.Const)
					if !ok {
						continue
					}
					named, ok := c.Type().(*types.Named)
					if !ok || named.Obj().Name() != "Name" || named.Obj().Pkg() != pass.Pkg {
						continue
					}
					decls = append(decls, decl{
						name:  id.Name,
						value: constant.StringVal(c.Val()),
						file:  base,
						pos:   id,
					})
				}
			}
		}
	}
	sort.SliceStable(decls, func(i, j int) bool { return decls[i].pos.Pos() < decls[j].pos.Pos() })
	byValue := map[string]string{}
	for _, d := range decls {
		if d.file != RegistryFile {
			pass.Reportf(d.pos.Pos(), "fail.Name constant %s declared in %s; the registry is %s", d.name, d.file, RegistryFile)
		}
		if !nameRE.MatchString(d.value) {
			pass.Reportf(d.pos.Pos(), "failpoint name %q does not match ^[a-z0-9-]+(/[a-z0-9-]+)*$", d.value)
		}
		if prev, dup := byValue[d.value]; dup {
			pass.Reportf(d.pos.Pos(), "duplicate failpoint name %q (already registered as %s)", d.value, prev)
		} else {
			byValue[d.value] = d.name
		}
	}
}

// registeredNames reads the registry out of the imported fail package's
// scope (export data carries constant values).
func registeredNames(failPkg *types.Package) map[string]string {
	out := map[string]string{}
	scope := failPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Name" || named.Obj().Pkg() != failPkg {
			continue
		}
		out[constant.StringVal(c.Val())] = name
	}
	return out
}

// importedFailPkg finds the directly imported fail package, if any.
func importedFailPkg(pkg *types.Package) *types.Package {
	for _, imp := range pkg.Imports() {
		if imp.Name() == "fail" && isFailPkg(imp.Path()) {
			return imp
		}
	}
	return nil
}

func isFailPkg(path string) bool {
	return path == "fail" || strings.HasSuffix(path, "/fail")
}

// isHarnessPkg reports whether a package is a fault-injection harness
// allowed to arm failpoints from non-test code: internal/chaos (the
// convergence harness, which also hosts the crash-point sweep), a
// split-out crashsweep package should the sweep ever move, and
// internal/stress (the chaos soak driver).
func isHarnessPkg(path string) bool {
	return path == "chaos" || strings.HasSuffix(path, "/chaos") ||
		path == "crashsweep" || strings.HasSuffix(path, "/crashsweep") ||
		path == "stress" || strings.HasSuffix(path, "/stress")
}
