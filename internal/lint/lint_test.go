package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const annotSrc = `package p

func f(m map[string]int) {
	for k := range m { //nezha:nondeterminism-ok sums are commutative
		_ = k
	}
	//nezha:nondeterminism-ok
	for k := range m {
		_ = k
	}
	//nezha:nondeterminism-okay not the marker
	for k := range m {
		_ = k
	}
	for k := range m { //nezha:locksafe-ok wrong check family
		_ = k
	}

	//nezha:nondeterminism-ok too far away
	_ = m
	for k := range m {
		_ = k
	}
}
`

func TestFindAnnotation(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", annotSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var ranges []*ast.RangeStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			ranges = append(ranges, rs)
		}
		return true
	})
	if len(ranges) != 5 {
		t.Fatalf("got %d range statements, want 5", len(ranges))
	}

	// Trailing annotation with a reason.
	ann := FindAnnotation(fset, file, ranges[0].Pos(), "nondeterminism")
	if !ann.Found || ann.Reason != "sums are commutative" {
		t.Errorf("trailing annotation: got %+v", ann)
	}
	// Line-above annotation, reason missing: Found with empty Reason, so
	// the analyzers can flag the unexplained escape hatch itself.
	ann = FindAnnotation(fset, file, ranges[1].Pos(), "nondeterminism")
	if !ann.Found || ann.Reason != "" {
		t.Errorf("reasonless annotation: got %+v", ann)
	}
	// Prefix collision (-okay) is not the marker.
	if ann := FindAnnotation(fset, file, ranges[2].Pos(), "nondeterminism"); ann.Found {
		t.Errorf("-okay suffix treated as annotation: %+v", ann)
	}
	// Wrong check family does not match.
	if ann := FindAnnotation(fset, file, ranges[3].Pos(), "nondeterminism"); ann.Found {
		t.Errorf("locksafe annotation matched nondeterminism check: %+v", ann)
	}
	// Two lines above the statement is out of range.
	if ann := FindAnnotation(fset, file, ranges[4].Pos(), "nondeterminism"); ann.Found {
		t.Errorf("distant annotation matched: %+v", ann)
	}
}

func TestIsCritical(t *testing.T) {
	for _, path := range []string{
		"github.com/nezha-dag/nezha/internal/core",
		"github.com/nezha-dag/nezha/internal/mpt",
		"internal/rlp",
	} {
		if !IsCritical(path) {
			t.Errorf("IsCritical(%q) = false, want true", path)
		}
	}
	for _, path := range []string{
		"github.com/nezha-dag/nezha/internal/node",
		"github.com/nezha-dag/nezha/internal/corex",
		"notinternal/core/sub",
	} {
		if IsCritical(path) {
			t.Errorf("IsCritical(%q) = true, want false", path)
		}
	}
}
