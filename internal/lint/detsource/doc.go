// Package detsource forbids ambient entropy in determinism-critical
// packages (lint.CriticalPackages). A replica's schedule must be a pure
// function of its input snapshot; wall clocks, the process-global random
// source, and the environment are exactly the inputs that differ between
// replicas.
//
// Flagged, in critical packages only:
//
//   - time.Now (and time.Since/time.Until, which read the clock)
//   - math/rand and math/rand/v2 package-level functions drawing from the
//     global source (rand.Intn, rand.Float64, rand.Shuffle, ...).
//     Constructing a seeded generator is fine: rand.New, rand.NewSource,
//     rand.NewZipf, rand.NewPCG, rand.NewChaCha8 are allowed, and methods
//     on a *rand.Rand value are never package-level selectors, so the
//     seeded-RNG-threaded-from-config idiom passes untouched.
//   - os.Getenv, os.LookupEnv, os.Environ
//
// Escape hatch, for reads that provably never feed the schedule (e.g.
// phase timing that only fills the local PhaseBreakdown):
//
//	start := time.Now() //nezha:nondeterminism-ok timing only feeds PhaseBreakdown
//
// The annotation shares the detmap grammar (internal/lint/doc.go); the
// reason is mandatory.
package detsource
