// Package b is detsource's negative corpus: not determinism-critical, so
// ambient entropy is allowed here.
package b

import (
	"math/rand"
	"time"
)

func free() int {
	_ = time.Now()
	return rand.Intn(4)
}
