// Package a is detsource's positive corpus: appended to
// lint.CriticalPackages by the test, so ambient entropy here is flagged.
package a

import (
	"math/rand"
	"os"
	"time"
)

func clocks() {
	_ = time.Now() // want `time.Now in determinism-critical package a`
	start := time.Unix(0, 0)
	_ = time.Since(start) // want `time.Since in determinism-critical`
}

func globals() {
	_ = rand.Intn(4)       // want `rand.Intn in determinism-critical`
	_ = os.Getenv("NEZHA") // want `os.Getenv in determinism-critical`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors build seeded sources: fine
	return r.Intn(4)                    // method on a threaded *rand.Rand: fine
}

func fixedTime() time.Time {
	return time.Unix(42, 0) // not a clock read
}

func annotated() time.Time {
	return time.Now() //nezha:nondeterminism-ok wall clock only feeds local timing stats, never the schedule
}
