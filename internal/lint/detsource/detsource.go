package detsource

import (
	"go/ast"
	"go/types"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis"
)

// Analyzer forbids ambient entropy (clock, global RNG, environment) in
// determinism-critical packages. See doc.go for the invariant.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbid time.Now, global math/rand, and os.Getenv in determinism-critical packages",
	Run:  run,
}

// forbidden maps package path -> function names -> what to say. An empty
// set means "every package-level function except the seeded constructors".
var forbidden = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"os":   {"Getenv": true, "LookupEnv": true, "Environ": true},
}

// randConstructors are the math/rand{,/v2} package-level functions that
// build seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lint.IsCritical(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path, name := pkg.Imported().Path(), sel.Sel.Name
			bad := false
			switch path {
			case "math/rand", "math/rand/v2":
				// Only functions draw from the global source; referencing
				// types (rand.Rand, rand.Source) is fine.
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); isFunc && !randConstructors[name] {
					bad = true
				}
			default:
				bad = forbidden[path][name]
			}
			if !bad {
				return true
			}
			ann := lint.FindAnnotation(pass.Fset, file, sel.Pos(), "nondeterminism")
			if ann.Found {
				if ann.Reason == "" {
					pass.Reportf(ann.Pos, "nezha:nondeterminism-ok annotation needs a reason")
				}
				return true
			}
			pass.Reportf(sel.Pos(), "%s.%s in determinism-critical package %s; thread a seeded source or clock through config, or justify with //nezha:nondeterminism-ok <reason>", pkg.Imported().Name(), name, pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}
