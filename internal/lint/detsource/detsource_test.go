package detsource_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis/analysistest"
	"github.com/nezha-dag/nezha/internal/lint/detsource"
)

func TestDetsource(t *testing.T) {
	// Package a is critical (flagged), package b is not (silent).
	lint.CriticalPackages = append(lint.CriticalPackages, "a")
	analysistest.Run(t, analysistest.TestData(), detsource.Analyzer, "a", "b")
}
