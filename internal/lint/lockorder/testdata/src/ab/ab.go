package ab

import "sync"

// A and B are two lock families; f and g acquire them in opposite
// orders — the planted ABBA cycle.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func f(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle: ab\.A\.mu -> ab\.B\.mu -> ab\.A\.mu`
	defer b.mu.Unlock()
}

func g(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
}

// nested reacquires the same family while held: self-deadlock.
func nested(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want `lock family ab\.A\.mu acquired again while already held`
	a.mu.Unlock()
	a.mu.Unlock()
}

// lockAndCall holds A.mu across a call that takes it again: the
// interprocedural variant, seen through helperLock's summary fact.
func lockAndCall(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
	helperLock(a) // want `call to helperLock acquires lock family ab\.A\.mu, which is already held`
}

func helperLock(a *A) {
	a.mu.Lock()
	defer a.mu.Unlock()
}

// annotated documents a deliberate same-family nesting.
func annotated(a *A, a2 *A) {
	a.mu.Lock()
	a2.mu.Lock() //nezha:lockorder-ok fixture: distinct instances locked in caller-enforced order
	a2.mu.Unlock()
	a.mu.Unlock()
}

// balanced takes the families in the f order with proper release:
// consistent, so it adds no new edges and no findings.
func balanced(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
