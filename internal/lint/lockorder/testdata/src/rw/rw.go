package rw

import "sync"

// R exercises the RWMutex paths: RLock counts for ordering edges but
// same-family RLock nesting is tolerated, and an embedded sync type
// resolves to its own family.
type R struct{ mu sync.RWMutex }

type Pool struct{ sync.Mutex }

func readers(r *R) {
	r.mu.RLock()
	r.mu.RLock() // shared-mode renesting: not reported
	r.mu.RUnlock()
	r.mu.RUnlock()
}

func upgrade(r *R) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.mu.Lock() // want `lock family rw\.R\.mu acquired again while already held`
	r.mu.Unlock()
}

func embedded(p *Pool) {
	p.Lock()
	p.Lock() // want `lock family rw\.Pool\.Mutex acquired again while already held`
	p.Unlock()
	p.Unlock()
}

// spawn holds the pool lock while a goroutine takes the R lock: no
// edge — the goroutine is its own thread and starts with nothing held.
func spawn(p *Pool, r *R) {
	p.Lock()
	defer p.Unlock()
	go func() {
		r.mu.Lock()
		r.mu.Unlock()
	}()
}
