package lockorder_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/lint/analysis/analysistest"
	"github.com/nezha-dag/nezha/internal/lint/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockorder.Analyzer, "ab", "rw")
}
