// Package lockorder implements the nezha-vet flow analyzer that builds
// the program-wide mutex-acquisition-order graph and reports the two
// shapes that deadlock a node under load:
//
//   - lock-order cycles: goroutine 1 acquires A then B, goroutine 2
//     acquires B then A (the classic ABBA). Each function contributes
//     its acquisition edges — "B taken while A held" — to one global
//     graph; a cycle in that graph is the finding, reported once with
//     every edge's acquisition site attached (Diagnostic.Path).
//   - same-family nested acquisition: taking a lock family that is
//     already held. For sync.Mutex that is an unconditional self-
//     deadlock; under the per-shard collapse (below) it flags nested
//     shard locks, which need an explicit order to be safe.
//
// # Lock families
//
// Locks are grouped by declaration site, not instance:
//
//	s.mu on type S     -> pkg.S.mu
//	shards[i].mu       -> pkg.Shard.mu   (every shard is one family)
//	embedded sync type -> pkg.Pool.Mutex
//	package-level var  -> pkg.mu
//	function-local var -> pkg.fn.mu
//
// The per-shard collapse trades precision for coverage: striped locks
// (mvcc version shards, kvstore buckets) become one family, so an
// ordering protocol between two shards of the same stripe shows up as
// a same-family nested acquisition rather than disappearing into
// instance-land. Deliberately-ordered nesting (locking shard i then
// shard j with i < j) is annotated, not restructured.
//
// # Mechanics
//
// Classification is by the callee's type — methods named Lock on
// non-sync types are ignored; sync.Mutex/RWMutex Lock/RLock/Unlock/
// RUnlock update a held-set dataflow over the function's CFG
// (internal/lint/analysis/cfg). The defer chain applies deferred
// unlocks at exit, so `mu.Lock(); defer mu.Unlock()` holds mu through
// the whole body, including early returns. Each function also exports a
// summary fact (LockFact) of every family it may acquire, transitively
// through static callees; a call made while holding H contributes
// H -> (callee's acquisitions) edges, which is what makes the graph
// interprocedural and cross-package. `go` statements and FuncLit bodies
// contribute nothing to the spawning function (a goroutine starts with
// nothing held); literal bodies are analyzed as their own functions.
//
// RLock counts as an acquisition for ordering edges (reader/writer
// ABBA deadlocks are real); RLock-after-RLock of one family is not
// reported (shared mode is re-entrant across goroutines in practice,
// and the writer-starvation variant is too timing-dependent to flag).
// TryLock is ignored. Pointer aliases (m := &s.mu; m.Lock()) fall out
// of the family resolution and are not tracked.
//
// # Escape hatch
//
//	shards[j].mu.Lock() //nezha:lockorder-ok j > i enforces the shard order
//
// at an acquisition (or edge) site suppresses that site's finding or
// excludes its edge from the cycle graph; a missing reason is itself
// reported.
package lockorder
