package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis"
	"github.com/nezha-dag/nezha/internal/lint/analysis/cfg"
)

// Analyzer builds the global mutex-acquisition-order graph and reports
// cycles (potential ABBA deadlocks) plus same-family nested
// acquisitions (self-deadlock, or shard aliasing under the per-shard
// collapse). See doc.go.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "detect lock-order cycles and same-family nested acquisitions across the whole program",
	Run:       run,
	Finish:    finish,
	FactTypes: []analysis.Fact{(*LockFact)(nil)},
}

// AcqSite is one mutex acquisition a function may perform, directly or
// through its callees.
type AcqSite struct {
	Family string
	Pos    token.Pos
	Excl   bool // Lock (true) vs RLock (false)
}

// LockFact is a function's acquisition summary, exported as an object
// fact so callers see through the call — including across packages.
type LockFact struct {
	Acquires []AcqSite
}

// AFact marks LockFact as an analysis fact.
func (*LockFact) AFact() {}

const maxAcquires = 48

// sharedKey indexes the run-global edge set in Pass.Shared.
type sharedKey struct{}

type edgeKey struct{ from, to string }

// edgeVal is the first witness of an acquisition-order edge: where the
// held lock was taken, and where the second one was (a lock statement,
// or the call site of a callee that locks).
type edgeVal struct {
	fromPos, toPos token.Pos
	via            string // callee name for interprocedural edges
}

func edgeSet(pass *analysis.Pass) map[edgeKey]edgeVal {
	if es, ok := pass.Shared[sharedKey{}].(map[edgeKey]edgeVal); ok {
		return es
	}
	es := map[edgeKey]edgeVal{}
	pass.Shared[sharedKey{}] = es
	return es
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	fns := cfg.PackageFuncsInfo(info, pass.Files)
	// Summaries first, bottom-up, so the held-set pass below sees every
	// local callee's acquisitions (cross-package callees were summarized
	// when their package ran). Recursive groups iterate once more: the
	// union is monotone and capped, so twice reaches the fixpoint we keep.
	for _, group := range cfg.BottomUp(info, fns) {
		iters := 1
		if len(group) > 1 {
			iters = 2
		}
		for i := 0; i < iters; i++ {
			for _, fn := range group {
				fact := summarize(pass, fn)
				if fn.Obj != nil {
					pass.ExportObjectFact(fn.Obj, fact)
				}
			}
		}
	}
	for _, fn := range fns {
		checkHeld(pass, fn)
	}
	return nil, nil
}

// summarize walks one function body collecting the lock families it may
// acquire: direct Lock/RLock calls plus its static callees' summaries.
// Goroutine bodies and `go` calls are excluded — a spawned goroutine is
// its own thread and starts with nothing held.
func summarize(pass *analysis.Pass, fn *cfg.FuncInfo) *LockFact {
	fact := &LockFact{}
	seen := map[string]bool{}
	add := func(a AcqSite) {
		key := a.Family + "|" + fmt.Sprint(a.Excl)
		if seen[key] || len(fact.Acquires) >= maxAcquires {
			return
		}
		seen[key] = true
		fact.Acquires = append(fact.Acquires, a)
	}
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if op, ok := classify(pass.TypesInfo, fn, n); ok {
				if op.acquire {
					add(AcqSite{Family: op.family, Pos: n.Pos(), Excl: op.excl})
				}
				return true
			}
			if callee := cfg.StaticCallee(pass.TypesInfo, n); callee != nil && callee != fn.Obj {
				var f LockFact
				if pass.ImportObjectFact(callee, &f) {
					for _, a := range f.Acquires {
						add(a)
					}
				}
			}
		}
		return true
	})
	return fact
}

// heldInfo is one currently-held lock family.
type heldInfo struct {
	pos  token.Pos
	excl bool
}

type state map[string]heldInfo

// checkHeld runs the held-set dataflow over the function's CFG: lock
// operations update the set, every acquisition while something is held
// records an order edge, and same-family reacquisition reports. The
// defer chain blocks apply deferred unlocks at exit, which is what
// keeps `mu.Lock(); defer mu.Unlock()` held through the whole body.
func checkHeld(pass *analysis.Pass, fn *cfg.FuncInfo) {
	fa := &heldAnalysis{
		pass: pass,
		fn:   fn,
		file: pass.FileFor(fn.Body().Pos()),
		seen: map[string]bool{},
	}
	g := fn.G
	rpo := g.RPO()
	out := make([]state, len(g.Blocks))
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, b := range rpo {
			st := fa.transfer(b, fa.inState(b, out))
			if !statesEqual(out[b.Index], st) {
				out[b.Index] = st
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	fa.recording = true
	for _, b := range rpo {
		fa.transfer(b, fa.inState(b, out))
	}
}

type heldAnalysis struct {
	pass      *analysis.Pass
	fn        *cfg.FuncInfo
	file      *ast.File
	recording bool
	seen      map[string]bool
}

func (fa *heldAnalysis) inState(b *cfg.Block, out []state) state {
	st := state{}
	for _, p := range b.Preds {
		for fam, h := range out[p.Index] {
			if have, ok := st[fam]; !ok || h.pos < have.pos {
				st[fam] = h
			}
		}
	}
	return st
}

func (fa *heldAnalysis) transfer(b *cfg.Block, st state) state {
	for _, n := range b.Nodes {
		// Deferred calls act at the defer chain blocks before exit, not
		// at their registration statement.
		if _, ok := n.(*ast.DeferStmt); ok {
			continue
		}
		root := n
		if rs, ok := n.(*ast.RangeStmt); ok {
			root = rs.X
		}
		ast.Inspect(root, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				fa.call(m, st)
			}
			return true
		})
	}
	return st
}

// call applies one call's lock effects to the held set.
func (fa *heldAnalysis) call(call *ast.CallExpr, st state) {
	info := fa.pass.TypesInfo
	if op, ok := classify(info, fa.fn, call); ok {
		if !op.acquire {
			delete(st, op.family)
			return
		}
		if have, held := st[op.family]; held {
			// RLock-after-RLock is shared-compatible; anything involving
			// an exclusive side can self-deadlock — and under the
			// per-shard collapse, "same family" may be two shards, which
			// still deserves a look (nested shard locks want an order).
			if op.excl || have.excl {
				fa.reportNested(call.Pos(), op.family, have)
			}
			return // keep the original acquisition position
		}
		for fam, h := range st {
			fa.recordEdge(fam, op.family, h.pos, call.Pos(), "")
		}
		st[op.family] = heldInfo{pos: call.Pos(), excl: op.excl}
		return
	}
	callee := cfg.StaticCallee(info, call)
	if callee == nil || callee == fa.fn.Obj {
		return
	}
	var f LockFact
	if !fa.pass.ImportObjectFact(callee, &f) {
		return
	}
	for _, a := range f.Acquires {
		if have, held := st[a.Family]; held {
			if a.Excl || have.excl {
				fa.reportNestedCall(call.Pos(), callee.Name(), a, have)
			}
			continue
		}
		for fam, h := range st {
			fa.recordEdge(fam, a.Family, h.pos, call.Pos(), callee.Name())
		}
		// The callee is assumed balanced: it releases before returning,
		// so the held set does not grow past the call.
	}
}

// recordEdge adds an acquisition-order edge to the run-global graph,
// first witness wins. An annotation at the acquisition site excludes
// the edge (and thereby any cycle through it).
func (fa *heldAnalysis) recordEdge(from, to string, fromPos, toPos token.Pos, via string) {
	if !fa.recording || from == to {
		return
	}
	es := edgeSet(fa.pass)
	k := edgeKey{from: from, to: to}
	if _, ok := es[k]; ok {
		return
	}
	if ann := lint.FindAnnotation(fa.pass.Fset, fa.file, toPos, "lockorder"); ann.Found {
		if ann.Reason == "" {
			fa.reportOnce(ann.Pos, "nezha:lockorder-ok annotation needs a reason", nil)
		}
		return
	}
	es[k] = edgeVal{fromPos: fromPos, toPos: toPos, via: via}
}

func (fa *heldAnalysis) reportNested(pos token.Pos, fam string, have heldInfo) {
	fa.reportAnnotated(pos, fmt.Sprintf(
		"lock family %s acquired again while already held; same-family locks may alias (per-shard collapse) — release first, restructure, or justify with //nezha:lockorder-ok <reason>",
		fam),
		[]analysis.PathStep{{Pos: have.pos, Message: "first acquired here"}})
}

func (fa *heldAnalysis) reportNestedCall(pos token.Pos, callee string, a AcqSite, have heldInfo) {
	fa.reportAnnotated(pos, fmt.Sprintf(
		"call to %s acquires lock family %s, which is already held here — deadlock risk; release first, or justify with //nezha:lockorder-ok <reason>",
		callee, a.Family),
		[]analysis.PathStep{
			{Pos: have.pos, Message: "first acquired here"},
			{Pos: a.Pos, Message: "acquired again inside " + callee},
		})
}

func (fa *heldAnalysis) reportAnnotated(pos token.Pos, msg string, path []analysis.PathStep) {
	if !fa.recording {
		return
	}
	if ann := lint.FindAnnotation(fa.pass.Fset, fa.file, pos, "lockorder"); ann.Found {
		if ann.Reason == "" {
			fa.reportOnce(ann.Pos, "nezha:lockorder-ok annotation needs a reason", nil)
		}
		return
	}
	fa.reportOnce(pos, msg, path)
}

func (fa *heldAnalysis) reportOnce(pos token.Pos, msg string, path []analysis.PathStep) {
	if !fa.recording {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, msg)
	if fa.seen[key] {
		return
	}
	fa.seen[key] = true
	fa.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg, Path: path})
}

// finish runs once after every package: cycle detection over the global
// acquisition-order graph. One report per strongly connected component,
// anchored at the first edge of a concrete witness cycle, with the full
// edge trail attached.
func finish(pass *analysis.Pass) (any, error) {
	es, _ := pass.Shared[sharedKey{}].(map[edgeKey]edgeVal)
	if len(es) == 0 {
		return nil, nil
	}
	adj := map[string][]string{}
	nodeSet := map[string]bool{}
	for k := range es {
		adj[k.from] = append(adj[k.from], k.to)
		nodeSet[k.from], nodeSet[k.to] = true, true
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, succs := range adj {
		sort.Strings(succs)
	}
	for _, scc := range sccs(nodes, adj) {
		if len(scc) < 2 {
			continue // self-edges are never recorded, so singletons are acyclic
		}
		cycle := findCycle(scc, adj)
		if len(cycle) == 0 {
			continue
		}
		var path []analysis.PathStep
		for i := 0; i < len(cycle); i++ {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			e := es[edgeKey{from: from, to: to}]
			acq := "acquires " + to
			if e.via != "" {
				acq += " via " + e.via
			}
			path = append(path,
				analysis.PathStep{Pos: e.fromPos, Message: "holding " + from},
				analysis.PathStep{Pos: e.toPos, Message: acq})
		}
		first := es[edgeKey{from: cycle[0], to: cycle[1]}]
		names := append(append([]string{}, cycle...), cycle[0])
		pass.Report(analysis.Diagnostic{
			Pos: first.toPos,
			Message: fmt.Sprintf(
				"lock-order cycle: %s; acquire lock families in one global order, or justify an edge site with //nezha:lockorder-ok <reason>",
				joinArrow(names)),
			Path: path,
		})
	}
	return nil, nil
}

// sccs is Tarjan's algorithm over the family graph, components in
// deterministic (reverse topological, tie-broken by sorted roots) order.
func sccs(nodes []string, adj map[string][]string) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var out [][]string
	next := 0
	var strong func(string)
	strong = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			out = append(out, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return out
}

// findCycle returns a concrete edge cycle within the component,
// starting at its smallest member (for deterministic reports).
func findCycle(scc []string, adj map[string][]string) []string {
	in := map[string]bool{}
	for _, n := range scc {
		in[n] = true
	}
	start := scc[0] // sccs sorted each component
	var path []string
	visited := map[string]bool{}
	var dfs func(string) bool
	dfs = func(v string) bool {
		path = append(path, v)
		visited[v] = true
		for _, w := range adj[v] {
			if !in[w] {
				continue
			}
			if w == start && len(path) > 1 {
				return true
			}
			if !visited[w] {
				if dfs(w) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}

func joinArrow(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " -> "
		}
		out += n
	}
	return out
}

// lockOp is one classified sync.Mutex/RWMutex operation.
type lockOp struct {
	family  string
	acquire bool
	excl    bool
}

// classify recognizes Lock/RLock/Unlock/RUnlock calls on sync.Mutex and
// sync.RWMutex by the callee's type (not the method name string), and
// resolves the receiver expression to a lock family. TryLock is ignored
// (its failure branch is not modeled).
func classify(info *types.Info, fn *cfg.FuncInfo, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	mfn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || mfn.Pkg() == nil || mfn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	recv := recvTypeName(mfn)
	if recv != "Mutex" && recv != "RWMutex" {
		return lockOp{}, false
	}
	op := lockOp{}
	switch mfn.Name() {
	case "Lock":
		op.acquire, op.excl = true, true
	case "RLock":
		op.acquire = true
	case "Unlock", "RUnlock":
	default:
		return lockOp{}, false
	}
	op.family = familyOf(info, sel.X, fn, recv)
	if op.family == "" {
		return lockOp{}, false
	}
	return op, true
}

// familyOf names the lock family of a mutex-valued expression:
//
//	s.mu            -> pkg.S.mu          (field: owner type + field name)
//	shards[i].mu    -> pkg.Shard.mu      (per-shard collapse is automatic:
//	                                      the family is the TYPE's field)
//	p.Lock()        -> pkg.Pool.Mutex    (embedded sync type)
//	var mu (pkg)    -> pkg.mu            (package-level variable)
//	var mu (local)  -> pkg.fnName.mu     (function-local variable)
//
// Unresolvable shapes (pointer aliases through locals, map elements of
// mutex type) return "" and are not tracked.
func familyOf(info *types.Info, e ast.Expr, fn *cfg.FuncInfo, syncType string) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.StarExpr:
		return familyOf(info, x.X, fn, syncType)
	case *ast.SelectorExpr:
		if fld, ok := info.Uses[x.Sel].(*types.Var); ok && fld.IsField() {
			if t := ownerNamed(info.TypeOf(x.X)); t != nil {
				return typeFamily(t) + "." + fld.Name()
			}
		}
		return ""
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		// Embedded sync type: the ident is the outer struct.
		if t := ownerNamed(v.Type()); t != nil && !isSyncType(t) {
			return typeFamily(t) + "." + syncType
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		return v.Pkg().Path() + "." + funcLabel(fn) + "." + v.Name()
	}
	return ""
}

func funcLabel(fn *cfg.FuncInfo) string {
	if fn.Obj != nil {
		return fn.Obj.Name()
	}
	return "func"
}

// ownerNamed unwraps pointers to the named type underneath, or nil.
func ownerNamed(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

func isSyncType(n *types.Named) bool {
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync"
}

func typeFamily(n *types.Named) string {
	if pkg := n.Obj().Pkg(); pkg != nil {
		return pkg.Path() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}

func recvTypeName(fn *types.Func) string {
	r := fn.Type().(*types.Signature).Recv()
	if r == nil {
		return ""
	}
	t := r.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for fam, h := range a {
		bh, ok := b[fam]
		if !ok || bh != h {
			return false
		}
	}
	return true
}
