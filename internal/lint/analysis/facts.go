package analysis

// Fact support, mirroring golang.org/x/tools/go/analysis: an analyzer
// attaches computed information (a Fact) to a types.Object — in this
// repo, always a function — while analyzing the object's own package,
// and reads it back while analyzing a *different* package that calls
// into the first. That is what lets the flow analyzers (dettaint,
// lockorder) compose per-function dataflow summaries across package
// boundaries instead of stopping at every call.
//
// The one real divergence from x/tools: facts here are keyed by a
// canonical object key string, not by types.Object identity. The loader
// type-checks every target package from source but resolves its imports
// through export data, so package A's view of B.F is a *different*
// types.Object than the one B's own pass exported a fact on. The
// canonical key — types.Func.FullName() for functions — is identical on
// both sides, which is the whole trick. Facts are in-memory only (one
// nezha-vet invocation analyzes the whole tree in dependency order, so
// nothing needs to be serialized); cross-package flows are therefore
// only visible when the run's package patterns cover both ends, which is
// why the CI gate runs `./...`.

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// A Fact is analyzer-computed information about an object, exported
// while analyzing the object's package and importable from any later
// pass. Implementations must be pointer types.
type Fact interface {
	// AFact is a marker method: it does nothing, it only marks the type
	// as a Fact (and keeps arbitrary types from sneaking into the store).
	AFact()
}

// factKey identifies one stored fact: the object's canonical key plus
// the concrete fact type (one object may carry facts from several
// analyzers, or several fact types from one).
type factKey struct {
	obj string
	typ reflect.Type
}

// factStore is the per-run fact table, shared by every pass of a Run.
// Runs are sequential (one package, one analyzer at a time), so no lock.
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: map[factKey]Fact{}}
}

// ObjectKey returns the canonical cross-package key for an object: for
// functions and methods, types.Func.FullName() (e.g.
// "(*pkg/path.T).M" or "pkg/path.F"), which is stable between the
// source-checked and export-data views of the same function. Generic
// instantiations collapse to their origin. Other objects key by package
// path and name.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.Origin().FullName()
	}
	key := obj.Name()
	if obj.Pkg() != nil {
		key = obj.Pkg().Path() + "." + key
	}
	return key
}

// ExportObjectFact records a fact for obj, overwriting any previous fact
// of the same concrete type. The pass must belong to a Run (standalone
// passes without a fact store drop the export silently).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil {
		return
	}
	p.facts.m[factKey{obj: ObjectKey(obj), typ: reflect.TypeOf(fact)}] = fact
}

// TestRunner builds passes that share one fact store and one Shared map
// — the per-run state the checker wires up internally — for external
// drivers, i.e. the analysistest harness. Each TestRunner is one
// logical Run: facts exported while analyzing an earlier package are
// importable while analyzing a later one, and FinishPass sees the
// accumulated Shared state.
type TestRunner struct {
	analyzer *Analyzer
	facts    *factStore
	shared   map[any]any
}

// NewTestRunner starts a fresh run for the analyzer.
func NewTestRunner(a *Analyzer) *TestRunner {
	return &TestRunner{analyzer: a, facts: newFactStore(), shared: map[any]any{}}
}

// Pass builds a per-package pass wired into the run's fact store.
func (r *TestRunner) Pass(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  r.analyzer,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    report,
		Shared:    r.shared,
		facts:     r.facts,
	}
}

// FinishPass builds the whole-program pass handed to Analyzer.Finish.
func (r *TestRunner) FinishPass(fset *token.FileSet, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: r.analyzer, Fset: fset, Report: report, Shared: r.shared, facts: r.facts}
}

// ImportObjectFact copies the fact of fact's concrete type previously
// exported for obj (by any earlier pass, typically the same analyzer on
// an already-analyzed package) into fact, reporting whether one existed.
// fact must be a pointer, as with ExportObjectFact.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil {
		return false
	}
	stored, ok := p.facts.m[factKey{obj: ObjectKey(obj), typ: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}
