// Package analysistest runs an analyzer over GOPATH-style testdata
// packages and checks its diagnostics against `// want` expectations, the
// same convention as golang.org/x/tools/go/analysis/analysistest:
//
//	for k := range m { // want `unordered map iteration`
//
// A want comment holds one or more backquoted regexps and applies to
// diagnostics reported on its own line. Test packages live under
// testdata/src/<importpath>/ and may import each other (resolved from
// source) or anything the surrounding module can build — stdlib and
// module-internal packages resolve through `go list -export`, so tests
// need no network and no vendored dependencies.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/nezha-dag/nezha/internal/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory, the conventional root for Run's packages.
func TestData() string {
	d, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return d
}

// Run loads each testdata package, applies the analyzer, and reports any
// mismatch between diagnostics and `// want` expectations through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, a, false, pkgPaths...)
}

// RunWithSuggestedFixes is Run plus golden-file checking: after the
// expectation pass, every file that received suggested fixes is patched
// in memory and compared byte-for-byte against <file>.golden.
func RunWithSuggestedFixes(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	run(t, testdata, a, true, pkgPaths...)
}

// run drives one analyzer over the named packages in order (list
// dependency packages before their dependents, as the real checker's
// `go list -deps` ordering does, so exported facts flow bottom-up), then
// runs the analyzer's Finish hook. Finish-phase diagnostics are checked
// against the want comments of whichever listed package's files they
// land in.
func run(t *testing.T, testdata string, a *analysis.Analyzer, fixes bool, pkgPaths ...string) {
	t.Helper()
	r := newResolver(testdata)
	runner := analysis.NewTestRunner(a)
	type loaded struct {
		pkg   *sourcePkg
		diags []analysis.Diagnostic
	}
	pkgs := make([]*loaded, 0, len(pkgPaths))
	for _, path := range pkgPaths {
		pkg, err := r.loadSource(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		l := &loaded{pkg: pkg}
		pass := runner.Pass(r.fset, pkg.files, pkg.types, pkg.info,
			func(d analysis.Diagnostic) { l.diags = append(l.diags, d) })
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s: analyzer failed: %v", path, err)
		}
		pkgs = append(pkgs, l)
	}
	if a.Finish != nil {
		// Whole-program diagnostics attach to the loaded package whose
		// files contain their position (falling back to the last one).
		finishPass := runner.FinishPass(r.fset, func(d analysis.Diagnostic) {
			for _, l := range pkgs {
				for _, f := range l.pkg.files {
					if f.FileStart <= d.Pos && d.Pos < f.FileEnd {
						l.diags = append(l.diags, d)
						return
					}
				}
			}
			if len(pkgs) > 0 {
				pkgs[len(pkgs)-1].diags = append(pkgs[len(pkgs)-1].diags, d)
			}
		})
		if _, err := a.Finish(finishPass); err != nil {
			t.Fatalf("finish failed: %v", err)
		}
	}
	for _, l := range pkgs {
		checkExpectations(t, r.fset, l.pkg.files, l.diags)
		if fixes {
			checkGolden(t, r.fset, l.diags)
		}
	}
}

// expectation is one backquoted pattern from a want comment.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("`([^`]*)`")

// checkExpectations diffs diagnostics against want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, m[1], err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

// checkGolden applies each file's suggested fixes and compares the result
// with its .golden sibling.
func checkGolden(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic) {
	t.Helper()
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	for _, d := range diags {
		for _, sf := range d.SuggestedFixes {
			for _, te := range sf.TextEdits {
				p := fset.Position(te.Pos)
				byFile[p.Filename] = append(byFile[p.Filename], edit{p.Offset, fset.Position(te.End).Offset, te.NewText})
			}
		}
	}
	for name, edits := range byFile {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Errorf("reading %s: %v", name, err)
			continue
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		for _, e := range edits {
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
		}
		golden, err := os.ReadFile(name + ".golden")
		if err != nil {
			t.Errorf("%s has suggested fixes but no golden file: %v", name, err)
			continue
		}
		if !bytes.Equal(src, golden) {
			t.Errorf("%s: fixed output differs from %s.golden:\n-- got --\n%s\n-- want --\n%s", name, name, src, golden)
		}
	}
}

// resolver loads testdata packages from source and everything else from
// the surrounding module's build cache via `go list -export`.
type resolver struct {
	testdata string
	fset     *token.FileSet
	gc       types.Importer

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	source  map[string]*sourcePkg
}

type sourcePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

func newResolver(testdata string) *resolver {
	r := &resolver{
		testdata: testdata,
		fset:     token.NewFileSet(),
		exports:  map[string]string{},
		source:   map[string]*sourcePkg{},
	}
	r.gc = importer.ForCompiler(r.fset, "gc", func(path string) (io.ReadCloser, error) {
		r.mu.Lock()
		p, ok := r.exports[path]
		r.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p)
	})
	return r
}

// Import implements types.Importer for the package under test: sibling
// testdata packages come from source, the rest from export data.
func (r *resolver) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(r.testdata, "src", path); isDir(dir) {
		p, err := r.loadSource(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	if err := r.ensureExport(path); err != nil {
		return nil, err
	}
	return r.gc.Import(path)
}

// ensureExport makes sure export data for path (and its dependencies) is
// in the lookup map, shelling out to go list on first need.
func (r *resolver) ensureExport(path string) error {
	r.mu.Lock()
	_, ok := r.exports[path]
	r.mu.Unlock()
	if ok {
		return nil
	}
	cmd := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "-deps", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if lp.Export != "" {
			r.exports[lp.ImportPath] = lp.Export
		}
	}
	if _, ok := r.exports[path]; !ok {
		return fmt.Errorf("go list produced no export data for %q", path)
	}
	return nil
}

// loadSource parses and type-checks testdata/src/<path> (cached).
func (r *resolver) loadSource(path string) (*sourcePkg, error) {
	r.mu.Lock()
	cached, ok := r.source[path]
	r.mu.Unlock()
	if ok {
		return cached, nil
	}
	dir := filepath.Join(r.testdata, "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(r.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: r}
	tpkg, err := conf.Check(path, r.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", path, err)
	}
	p := &sourcePkg{files: files, types: tpkg, info: info}
	r.mu.Lock()
	r.source[path] = p
	r.mu.Unlock()
	return p, nil
}

func isDir(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}
