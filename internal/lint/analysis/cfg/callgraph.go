package cfg

// The offline call graph: static (compile-time-resolvable) call edges
// between the functions of the loaded packages, plus the bottom-up SCC
// ordering the flow analyzers use to compute per-function summaries
// callees-first. Dynamic dispatch — interface methods, function values
// — resolves to the interface/declared object or not at all; analyzers
// treat an unresolved or summary-less callee conservatively (dettaint
// stops taint, lockorder assumes no acquisitions) and the doc.go of
// each analyzer states that limit.

import (
	"go/ast"
	"go/types"
)

// FuncInfo is one analyzable function body: a declared function/method
// (Decl and Obj set) or a function literal (Lit set, Obj nil — literals
// get no summaries, but their bodies are scanned for local findings).
type FuncInfo struct {
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Obj  *types.Func
	G    *CFG
}

// Name renders the function for diagnostics.
func (f *FuncInfo) Name() string {
	if f.Obj != nil {
		return f.Obj.FullName()
	}
	return "func literal"
}

// Body returns the function's block statement.
func (f *FuncInfo) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// PackageFuncs returns every function body in the files — declared
// functions first (source order), then function literals (source order)
// — each with its CFG built. Bodiless declarations are skipped.
func PackageFuncs(files []*ast.File) []*FuncInfo {
	return packageFuncs(files, nil)
}

// PackageFuncsInfo is PackageFuncs resolving each declaration's object
// through info (needed for summaries and the call graph).
func PackageFuncsInfo(info *types.Info, files []*ast.File) []*FuncInfo {
	return packageFuncs(files, info)
}

func packageFuncs(files []*ast.File, info *types.Info) []*FuncInfo {
	var decls, lits []*FuncInfo
	for _, file := range files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				fi := &FuncInfo{Decl: n, G: New(n.Body)}
				if info != nil {
					if obj, ok := info.Defs[n.Name].(*types.Func); ok {
						fi.Obj = obj
					}
				}
				decls = append(decls, fi)
			case *ast.FuncLit:
				lits = append(lits, &FuncInfo{Lit: n, G: New(n.Body)})
			}
			return true
		})
	}
	return append(decls, lits...)
}

// StaticCallee resolves a call expression to its compile-time callee:
// a package function, a method (by declared receiver), or a method
// expression. Calls through function values, builtins, and type
// conversions return nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// CallsIn returns the static callees invoked anywhere in the function's
// body (FuncLits included: a closure defined here runs with this
// function's call obligations from the analyses' point of view — both
// flow analyzers scan literal bodies separately for local findings, but
// the call-graph edge keeps summary ordering right when a function
// passes work to its own closure).
func CallsIn(info *types.Info, fi *FuncInfo) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	ast.Inspect(fi.Body(), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := StaticCallee(info, call); fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// BottomUp groups the declared functions into strongly connected
// components of the intra-package call graph and returns the groups
// callees-first: by the time a group is visited, every function it
// calls outside the group has already been visited. Mutually recursive
// functions share a group; the analyzers iterate a group to a fixpoint.
// Function literals (Obj == nil) are appended as singleton groups at
// the end.
func BottomUp(info *types.Info, fns []*FuncInfo) [][]*FuncInfo {
	byObj := map[*types.Func]int{}
	for i, f := range fns {
		if f.Obj != nil {
			byObj[f.Obj] = i
		}
	}
	// Intra-package adjacency by index.
	adj := make([][]int, len(fns))
	for i, f := range fns {
		if f.Obj == nil {
			continue
		}
		for _, callee := range CallsIn(info, f) {
			if j, ok := byObj[callee]; ok {
				adj[i] = append(adj[i], j)
			}
		}
	}
	// Tarjan: SCCs pop in reverse topological order — callees' components
	// complete before their callers' — which is exactly bottom-up.
	const unvisited = -1
	index := make([]int, len(fns))
	low := make([]int, len(fns))
	onStack := make([]bool, len(fns))
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	var groups [][]*FuncInfo
	next := 0
	var strong func(int)
	strong = func(v int) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == unvisited {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var group []*FuncInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				group = append(group, fns[w])
				if w == v {
					break
				}
			}
			groups = append(groups, group)
		}
	}
	for i, f := range fns {
		if f.Obj != nil && index[i] == unvisited {
			strong(i)
		}
	}
	for _, f := range fns {
		if f.Obj == nil {
			groups = append(groups, []*FuncInfo{f})
		}
	}
	return groups
}
