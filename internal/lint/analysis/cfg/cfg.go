// Package cfg is the flow layer under the nezha-vet flow analyzers
// (dettaint, lockorder): per-function control-flow graphs, a static
// call graph, and a bottom-up SCC ordering for computing per-function
// dataflow summaries callees-first.
//
// The CFG is statement-granular with two deliberate refinements:
//
//   - Short-circuit expansion: `if a && b { ... }` produces separate
//     blocks for evaluating a and b, with the false edge of each leading
//     past the body — so a flow-sensitive analysis sees that b is only
//     evaluated when a held.
//   - Defer and panic edges: every function gets a defer chain —
//     deferred calls in LIFO order between any exit (return, panic, or
//     falling off the end) and the exit block. The chain over-
//     approximates: a return before a conditional defer was registered
//     still routes through it, which is the safe direction for both
//     held-lock tracking (defer mu.Unlock() keeps mu held to the end)
//     and taint. Panic edges are built for explicit panic(...) calls;
//     arbitrary possibly-panicking calls do not fork the graph (that
//     would drown any analysis in edges).
//
// FuncLits are opaque single nodes in the enclosing function's graph —
// they execute later, under their own CFG (PackageFuncs returns them as
// separate entries).
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// CFG is one function body's control-flow graph.
type CFG struct {
	// Blocks in creation order; Blocks[0] is the entry block.
	Blocks []*Block
	// Entry is where execution starts (== Blocks[0]).
	Entry *Block
	// Exit is the single synthetic exit block every terminating path
	// reaches (after the defer chain, when the function has defers).
	Exit *Block
}

// Block is one straight-line run of statements/expressions.
type Block struct {
	Index int
	// Kind names what created the block ("entry", "exit", "if.then",
	// "for.head", "defer", ...) — for tests and debugging.
	Kind string
	// Nodes are the statements and condition expressions executed in the
	// block, in order. Range headers appear as the *ast.RangeStmt itself;
	// deferred calls appear as their *ast.CallExpr inside "defer" blocks.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("%d.%s", b.Index, b.Kind) }

// builder carries the under-construction graph.
type builder struct {
	cfg *CFG
	cur *Block
	// ret is where a return (or panic) transfers: the defer chain head,
	// or Exit when the function has no defers.
	ret *Block
	// targets is the stack of enclosing breakable/continuable statements.
	targets []*target
	// labels maps label names to their goto/label blocks.
	labels map[string]*Block
}

type target struct {
	label string // enclosing LabeledStmt's name, "" when unlabeled
	brk   *Block // break destination ("done" block); nil for none
	cont  *Block // continue destination (loop head); nil for non-loops
}

// New builds the CFG for one function body.
func New(body *ast.BlockStmt) *CFG {
	b := &builder{cfg: &CFG{}, labels: map[string]*Block{}}
	entry := b.newBlock("entry")
	b.cfg.Entry = entry
	exit := b.newBlock("exit")
	b.cfg.Exit = exit

	// Pre-collect defers (FuncLits excluded: their defers are their own)
	// and build the LIFO chain ... -> d2 -> d1 -> exit ahead of the walk,
	// so return edges built mid-walk have a stable destination.
	var defers []*ast.DeferStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			defers = append(defers, n)
		}
		return true
	})
	b.ret = exit
	for _, d := range defers { // source order; chain head ends up last-registered
		db := b.newBlock("defer")
		db.Nodes = append(db.Nodes, d.Call)
		b.addEdge(db, b.ret)
		b.ret = db
	}

	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end runs the defers too.
	b.addEdge(b.cur, b.ret)
	for _, blk := range b.cfg.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.cfg
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) addEdge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startUnreachable opens a fresh block with no incoming edge — the code
// after a return/panic/branch. It is still built (and analyzable), it
// just has no predecessors.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock("unreachable")
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label carries the name of an
// immediately-enclosing LabeledStmt, so labeled loops register labeled
// break/continue targets.
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmtList(s.Body.List)
		b.addEdge(b.cur, done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else, "")
			b.addEdge(b.cur, done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		b.addEdge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, done)
		} else {
			b.addEdge(b.cur, body)
		}
		b.pushTarget(&target{label: label, brk: done, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		if s.Post != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Post)
		}
		b.addEdge(b.cur, head)
		b.popTarget()
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.addEdge(b.cur, head)
		head.Nodes = append(head.Nodes, s) // the range header itself
		b.addEdge(head, body)
		b.addEdge(head, done)
		b.pushTarget(&target{label: label, brk: done, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.addEdge(b.cur, head)
		b.popTarget()
		b.cur = done

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s, label)

	case *ast.SelectStmt:
		head := b.cur
		done := b.newBlock("select.done")
		b.pushTarget(&target{label: label, brk: done})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.addEdge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			b.addEdge(b.cur, done)
		}
		b.popTarget()
		b.cur = done

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.addEdge(b.cur, b.ret)
		b.startUnreachable()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.LabeledStmt:
		// The label's block doubles as the goto target; fall through into
		// the labeled statement with the label attached (for labeled
		// break/continue on loops and switches).
		lb := b.labelBlock(s.Label.Name)
		b.addEdge(b.cur, lb)
		b.cur = lb
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.DeferStmt:
		// Registration point: visible in order, but the call itself sits
		// in the pre-built defer chain before Exit.
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				// Panic edge: defers run, then the function unwinds.
				b.addEdge(b.cur, b.ret)
				b.startUnreachable()
			}
		}

	default:
		// Assignments, declarations, sends, go statements, empty
		// statements: straight-line nodes.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchStmt handles expression and type switches: head evaluates the
// tag, every clause gets a block, fallthrough chains clause bodies.
func (b *builder) switchStmt(s ast.Stmt, label string) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		clauses = s.Body.List
	}
	head := b.cur
	done := b.newBlock("switch.done")
	b.pushTarget(&target{label: label, brk: done})
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		bodies[i] = b.newBlock("switch.case")
		b.addEdge(head, bodies[i])
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st, "")
		}
		if fallsThrough && i+1 < len(bodies) {
			b.addEdge(b.cur, bodies[i+1])
		} else {
			b.addEdge(b.cur, done)
		}
	}
	if !hasDefault {
		b.addEdge(head, done)
	}
	b.popTarget()
	b.cur = done
}

// branch handles break/continue/goto (fallthrough is consumed by
// switchStmt).
func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.brk != nil && (label == "" || t.label == label) {
				b.addEdge(b.cur, t.brk)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.cont != nil && (label == "" || t.label == label) {
				b.addEdge(b.cur, t.cont)
				break
			}
		}
	case token.GOTO:
		b.addEdge(b.cur, b.labelBlock(label))
	}
	b.startUnreachable()
}

func (b *builder) labelBlock(name string) *Block {
	if lb, ok := b.labels[name]; ok {
		return lb
	}
	lb := b.newBlock("label." + name)
	b.labels[name] = lb
	return lb
}

// cond translates a branch condition, expanding short-circuit && and ||
// into their own blocks so each operand's evaluation is a distinct
// flow point: in `a && b`, b only evaluates when a was true.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			rhs := b.newBlock("cond.and")
			b.cond(x.X, rhs, f)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			rhs := b.newBlock("cond.or")
			b.cond(x.X, t, rhs)
			b.cur = rhs
			b.cond(x.Y, t, f)
			return
		}
	}
	b.cur.Nodes = append(b.cur.Nodes, e)
	b.addEdge(b.cur, t)
	b.addEdge(b.cur, f)
}

func (b *builder) pushTarget(t *target) { b.targets = append(b.targets, t) }
func (b *builder) popTarget()           { b.targets = b.targets[:len(b.targets)-1] }

// RPO returns the blocks reachable from Entry in reverse postorder —
// the canonical iteration order for a forward dataflow worklist.
func (g *CFG) RPO() []*Block {
	seen := make([]bool, len(g.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dump renders the graph for tests: one line per block, in index order,
// with node sketches and successor indices.
func (g *CFG) Dump(fset *token.FileSet) string {
	var out strings.Builder
	for _, blk := range g.Blocks {
		var nodes []string
		for _, n := range blk.Nodes {
			nodes = append(nodes, sketch(fset, n))
		}
		var succs []string
		for _, s := range blk.Succs {
			succs = append(succs, fmt.Sprint(s.Index))
		}
		sort.Strings(succs)
		fmt.Fprintf(&out, "%d.%s [%s] -> %s\n", blk.Index, blk.Kind, strings.Join(nodes, "; "), strings.Join(succs, " "))
	}
	return out.String()
}

// sketch renders one node compactly (single line, no positions).
func sketch(fset *token.FileSet, n ast.Node) string {
	if rs, ok := n.(*ast.RangeStmt); ok {
		var buf bytes.Buffer
		printer.Fprint(&buf, fset, rs.X)
		return "range " + buf.String()
	}
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, n)
	s := buf.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + "..."
	}
	return s
}
