package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as a file containing one function and returns its
// CFG plus the fileset.
func build(t *testing.T, src string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok {
			return New(fn.Body), fset
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// blockByKind returns the first block of the kind, failing when absent.
func blockByKind(t *testing.T, g *CFG, kind string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Kind == kind {
			return b
		}
	}
	t.Fatalf("no %q block in:\n%s", kind, dump(g))
	return nil
}

func dump(g *CFG) string { return g.Dump(token.NewFileSet()) }

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestDeferEdges(t *testing.T) {
	g, _ := build(t, `
func f(cond bool) {
	mu.Lock()
	defer mu.Unlock()
	if cond {
		return
	}
	work()
}`)
	// One defer block sits between every exit path and Exit.
	deferB := blockByKind(t, g, "defer")
	if len(deferB.Nodes) != 1 {
		t.Fatalf("defer block carries %d nodes, want 1 (the call)", len(deferB.Nodes))
	}
	if call, ok := deferB.Nodes[0].(*ast.CallExpr); !ok {
		t.Errorf("defer block node is %T, want *ast.CallExpr", deferB.Nodes[0])
	} else if sel := call.Fun.(*ast.SelectorExpr); sel.Sel.Name != "Unlock" {
		t.Errorf("defer block call is %s, want Unlock", sel.Sel.Name)
	}
	if !hasEdge(deferB, g.Exit) {
		t.Errorf("defer block must edge to exit:\n%s", dump(g))
	}
	// The early return and the fall-off path both route through the defer.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok && !hasEdge(b, deferB) {
				t.Errorf("return block %s bypasses the defer chain:\n%s", b, dump(g))
			}
		}
	}
	// Exit's only predecessor is the defer chain.
	if len(g.Exit.Preds) != 1 || g.Exit.Preds[0] != deferB {
		t.Errorf("exit preds = %v, want only the defer block:\n%s", g.Exit.Preds, dump(g))
	}
}

func TestDeferLIFOChain(t *testing.T) {
	g, _ := build(t, `
func f() {
	defer first()
	defer second()
}`)
	var defers []*Block
	for _, b := range g.Blocks {
		if b.Kind == "defer" {
			defers = append(defers, b)
		}
	}
	if len(defers) != 2 {
		t.Fatalf("got %d defer blocks, want 2:\n%s", len(defers), dump(g))
	}
	// LIFO: the chain runs second() then first() then exit.
	name := func(b *Block) string {
		return b.Nodes[0].(*ast.CallExpr).Fun.(*ast.Ident).Name
	}
	var chainHead *Block
	for _, b := range defers {
		if name(b) == "second" {
			chainHead = b
		}
	}
	if chainHead == nil {
		t.Fatalf("no second() defer block:\n%s", dump(g))
	}
	if len(chainHead.Succs) != 1 || name(chainHead.Succs[0]) != "first" {
		t.Errorf("second() must chain to first():\n%s", dump(g))
	}
	if !hasEdge(chainHead.Succs[0], g.Exit) {
		t.Errorf("first() must chain to exit:\n%s", dump(g))
	}
}

func TestPanicEdge(t *testing.T) {
	g, _ := build(t, `
func f() {
	defer cleanup()
	panic("boom")
}`)
	deferB := blockByKind(t, g, "defer")
	if !hasEdge(g.Entry, deferB) {
		t.Errorf("panic must edge into the defer chain:\n%s", dump(g))
	}
}

func TestShortCircuitBranches(t *testing.T) {
	g, _ := build(t, `
func f(a, b bool) {
	if a && b {
		both()
	}
	done()
}`)
	// a gets its own evaluation point (entry), b another (cond.and); the
	// then-block is only reachable through BOTH.
	and := blockByKind(t, g, "cond.and")
	then := blockByKind(t, g, "if.then")
	done := blockByKind(t, g, "if.done")
	if !hasEdge(g.Entry, and) {
		t.Errorf("a-true must flow to b's evaluation:\n%s", dump(g))
	}
	if !hasEdge(g.Entry, done) {
		t.Errorf("a-false must skip past the body:\n%s", dump(g))
	}
	if hasEdge(g.Entry, then) {
		t.Errorf("then-block reachable without evaluating b:\n%s", dump(g))
	}
	if !hasEdge(and, then) || !hasEdge(and, done) {
		t.Errorf("b's evaluation must branch to then and done:\n%s", dump(g))
	}
}

func TestShortCircuitOrWithNot(t *testing.T) {
	g, _ := build(t, `
func f(a, b bool) {
	if !(a || b) {
		neither()
	}
}`)
	// !(a || b): a-true exits the condition (negated → else), a-false
	// evaluates b.
	or := blockByKind(t, g, "cond.or")
	then := blockByKind(t, g, "if.then")
	done := blockByKind(t, g, "if.done")
	if !hasEdge(g.Entry, or) || !hasEdge(g.Entry, done) {
		t.Errorf("a must branch to b's evaluation and (negated true) done:\n%s", dump(g))
	}
	if hasEdge(g.Entry, then) {
		t.Errorf("then-block reachable from a alone:\n%s", dump(g))
	}
	if !hasEdge(or, then) {
		t.Errorf("b-false (negated) must reach then:\n%s", dump(g))
	}
}

func TestForLoop(t *testing.T) {
	g, _ := build(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		work(i)
	}
	after()
}`)
	head := blockByKind(t, g, "for.head")
	body := blockByKind(t, g, "for.body")
	done := blockByKind(t, g, "for.done")
	if !hasEdge(head, body) || !hasEdge(head, done) {
		t.Errorf("loop head must branch to body and done:\n%s", dump(g))
	}
	// Back edge: the body's tail (where i++ lands) re-enters the head.
	backEdge := false
	for _, p := range head.Preds {
		if p != g.Entry {
			backEdge = true
		}
	}
	if !backEdge {
		t.Errorf("no back edge into the loop head:\n%s", dump(g))
	}
	// break edges to done.
	breakEdge := false
	for _, p := range done.Preds {
		if p != head {
			breakEdge = true
		}
	}
	if !breakEdge {
		t.Errorf("break must edge to for.done:\n%s", dump(g))
	}
	_ = body
}

func TestRangeLoop(t *testing.T) {
	g, fset := build(t, `
func f(m map[string]int) {
	for k := range m {
		use(k)
	}
}`)
	head := blockByKind(t, g, "range.head")
	body := blockByKind(t, g, "range.body")
	done := blockByKind(t, g, "range.done")
	if len(head.Nodes) != 1 {
		t.Fatalf("range head carries %d nodes, want the RangeStmt:\n%s", len(head.Nodes), g.Dump(fset))
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Errorf("range head node is %T, want *ast.RangeStmt", head.Nodes[0])
	}
	if !hasEdge(head, body) || !hasEdge(head, done) || !hasEdge(body, head) {
		t.Errorf("range edges wrong:\n%s", g.Dump(fset))
	}
}

func TestLabeledContinue(t *testing.T) {
	g, _ := build(t, `
func f() {
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == i {
				continue outer
			}
		}
	}
}`)
	// The labeled continue must edge to the OUTER loop head, not the inner.
	var heads []*Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			heads = append(heads, b)
		}
	}
	if len(heads) != 2 {
		t.Fatalf("got %d for.head blocks, want 2:\n%s", len(heads), dump(g))
	}
	outer := heads[0]
	found := false
	for _, p := range outer.Preds {
		if p.Kind == "if.then" {
			found = true
		}
	}
	if !found {
		t.Errorf("continue outer must edge to the outer head:\n%s", dump(g))
	}
}

func TestSelectCases(t *testing.T) {
	g, _ := build(t, `
func f(a, b chan int) {
	select {
	case x := <-a:
		use(x)
	case y := <-b:
		use(y)
	}
}`)
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "select.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 2 {
		t.Fatalf("got %d select.case blocks, want 2:\n%s", len(cases), dump(g))
	}
	for _, c := range cases {
		if !hasEdge(g.Entry, c) {
			t.Errorf("entry must branch to every select case:\n%s", dump(g))
		}
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g, _ := build(t, `
func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
}`)
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("got %d switch.case blocks, want 3:\n%s", len(cases), dump(g))
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Errorf("fallthrough must chain case 1 into case 2:\n%s", dump(g))
	}
	// With a default present, head must NOT edge straight to done.
	done := blockByKind(t, g, "switch.done")
	if hasEdge(g.Entry, done) {
		t.Errorf("switch with default must not skip to done:\n%s", dump(g))
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	g, _ := build(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		work(i)
	}
}`)
	rpo := g.RPO()
	if len(rpo) == 0 || rpo[0] != g.Entry {
		t.Fatalf("RPO must start at entry")
	}
	seen := map[*Block]bool{}
	for _, b := range rpo {
		if seen[b] {
			t.Fatalf("block %s repeated in RPO", b)
		}
		seen[b] = true
	}
}

func TestFuncLitOpaque(t *testing.T) {
	g, _ := build(t, `
func f() {
	go func() {
		return
	}()
	after()
}`)
	// The literal's return must not create edges in the outer graph: the
	// only exit predecessors are the outer fall-off path.
	if strings.Contains(dump(g), "defer") {
		t.Fatalf("unexpected defer blocks:\n%s", dump(g))
	}
	for _, p := range g.Exit.Preds {
		if p.Kind == "unreachable" {
			t.Errorf("literal's return leaked into outer CFG:\n%s", dump(g))
		}
	}
}
