package analysis

import "testing"

// TestLoad exercises the go list + export-data pipeline against a real
// module package: full type information with zero network access.
func TestLoad(t *testing.T) {
	pkgs, err := Load("", "github.com/nezha-dag/nezha/internal/fail")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.PkgPath != "github.com/nezha-dag/nezha/internal/fail" {
		t.Errorf("PkgPath = %q", p.PkgPath)
	}
	if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
		t.Fatalf("incomplete package: types=%v info=%v files=%d", p.Types, p.TypesInfo, len(p.Files))
	}
	for _, name := range []string{"Hit", "Enable", "Name"} {
		if p.Types.Scope().Lookup(name) == nil {
			t.Errorf("scope is missing %s", name)
		}
	}
	// Dependencies resolve through export data: the fail package imports
	// stdlib sync, whose types must have arrived intact.
	found := false
	for _, imp := range p.Types.Imports() {
		if imp.Path() == "sync" && imp.Scope().Lookup("Mutex") != nil {
			found = true
		}
	}
	if !found {
		t.Error("dependency sync not resolved with type information")
	}
}
