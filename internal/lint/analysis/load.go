package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	Export     string
	Match      []string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns with `go list -export -deps` (run in dir; "" means
// the current directory) and returns a Package for every pattern-matched
// package, parsed with comments and type-checked from source. Imports —
// including the target packages' imports of each other — resolve through
// the build cache's export data, so Load needs the tree to compile but
// never re-type-checks a dependency.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Standard,Export,Match,Incomplete,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if len(lp.Match) > 0 {
			p := lp
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (does the tree build?)", path)
		}
		return os.Open(p)
	})

	var pkgs []*Package
	var errs []string
	for _, t := range targets {
		if t.Error != nil {
			errs = append(errs, fmt.Sprintf("%s: %s", t.ImportPath, t.Error.Err))
			continue
		}
		if len(t.CgoFiles) > 0 {
			errs = append(errs, fmt.Sprintf("%s: cgo packages are not supported", t.ImportPath))
			continue
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if len(errs) > 0 {
		return pkgs, fmt.Errorf("load: %s", strings.Join(errs, "; "))
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", path, err)
	}
	return &Package{
		PkgPath:   path,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map analyzers read
// populated (shared with the analysistest loader).
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
