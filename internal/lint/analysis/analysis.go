// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough framework to write the
// nezha-vet analyzers (internal/lint/...) without a module dependency on
// x/tools, which this repo deliberately avoids (zero third-party deps).
//
// The API mirrors the x/tools types field-for-field where we use them —
// Analyzer, Pass, Diagnostic, SuggestedFix, TextEdit, and (since the
// flow analyzers landed) object Facts — so migrating an analyzer onto
// the real framework later is a change of import path, not a rewrite.
// What is intentionally missing: Requires/ResultOf (no analyzer-to-
// analyzer composition) and flags per analyzer. Two deliberate
// extensions go beyond x/tools: Analyzer.Finish, a whole-program hook
// for analyzers that aggregate state across every package (lockorder's
// global acquisition graph), and Diagnostic.Path, a multi-position
// explanation trail (dettaint's source→sink chain, lockorder's cycle).
// Loading is done by shelling out to `go list -export` and type-checking
// each target package from source against the build cache's export data
// (see Load); `go list -deps` emits dependencies before dependents, so
// passes run in dependency order and facts flow bottom-up.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short command-line identifier ("detmap").
	Name string
	// Doc is the one-paragraph description shown by nezha-vet -list; the
	// full invariant lives in the analyzer package's doc.go.
	Doc string
	// Run applies the check to one package. The return value is unused
	// (kept for x/tools signature compatibility); findings are delivered
	// through pass.Report.
	Run func(*Pass) (any, error)
	// FactTypes lists the fact types the analyzer exports or imports
	// (documentation and a registration sanity check; each entry must be
	// a pointer).
	FactTypes []Fact
	// Finish, if non-nil, runs once after Run has seen every package —
	// the hook for whole-program verdicts that no single package can
	// decide (lockorder's cycle detection over the global acquisition
	// graph). Its Pass carries Fset, Shared, and Report; Files, Pkg, and
	// TypesInfo are nil.
	Finish func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
	// Shared is per-analyzer scratch state threaded through every pass of
	// one Run, including Finish — where an analyzer accumulates whole-
	// program structures (lockorder's edge set). Never shared between
	// analyzers or between Runs.
	Shared map[any]any

	// facts is the run's fact store (see facts.go); nil for standalone
	// passes constructed outside Run.
	facts *factStore
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FileFor returns the syntax tree containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
	// Path is an optional multi-position explanation trail, oldest hop
	// first: dettaint attaches the interprocedural source→sink chain,
	// lockorder the edges of a deadlock cycle. The driver prints each
	// step indented under the finding and carries them in -json output.
	Path []PathStep
	// SuggestedFixes are mechanical rewrites nezha-vet -fix can apply.
	SuggestedFixes []SuggestedFix
}

// PathStep is one hop of a Diagnostic.Path.
type PathStep struct {
	Pos     token.Pos
	Message string
}

// SuggestedFix is one alternative mechanical repair for a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
