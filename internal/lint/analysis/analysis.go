// Package analysis is a self-contained miniature of
// golang.org/x/tools/go/analysis: just enough framework to write the
// nezha-vet analyzers (internal/lint/...) without a module dependency on
// x/tools, which this repo deliberately avoids (zero third-party deps).
//
// The API mirrors the x/tools types field-for-field where we use them —
// Analyzer, Pass, Diagnostic, SuggestedFix, TextEdit — so migrating an
// analyzer onto the real framework later is a change of import path, not
// a rewrite. What is intentionally missing: Facts, Requires/ResultOf
// (no analyzer composition), and flags per analyzer. Loading is done by
// shelling out to `go list -export` and type-checking each target package
// from source against the build cache's export data (see Load).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the short command-line identifier ("detmap").
	Name string
	// Doc is the one-paragraph description shown by nezha-vet -list; the
	// full invariant lives in the analyzer package's doc.go.
	Doc string
	// Run applies the check to one package. The return value is unused
	// (kept for x/tools signature compatibility); findings are delivered
	// through pass.Report.
	Run func(*Pass) (any, error)
}

// Pass hands an Analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FileFor returns the syntax tree containing pos, or nil.
func (p *Pass) FileFor(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string
	// SuggestedFixes are mechanical rewrites nezha-vet -fix can apply.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one alternative mechanical repair for a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}
