package analysis

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Finding pairs a diagnostic with where it came from.
type Finding struct {
	Analyzer *Analyzer
	Package  *Package
	Diagnostic
}

// Run applies every analyzer to every package and returns the findings
// sorted by file position. Analyzer errors (not findings — crashes) are
// returned as an error.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{Analyzer: a, Package: pkg, Diagnostic: d})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := pkgs[0].Fset.Position(findings[i].Pos), pkgs[0].Fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return findings, nil
}

// Main is the multichecker driver behind cmd/nezha-vet: parse flags, load
// the named packages, run the analyzers, print findings GNU-style, and
// exit 0 (clean), 1 (findings), or 2 (usage or load failure).
func Main(analyzers ...*Analyzer) {
	fs := flag.NewFlagSet("nezha-vet", flag.ExitOnError)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source tree")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: nezha-vet [flags] [package patterns]\n\n"+
			"Runs the repo-specific invariant analyzers (see internal/lint) over the\n"+
			"named packages (default ./...). Exits 1 if any invariant is violated.\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "nezha-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	pkgs, err := Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nezha-vet: %v\n", err)
		os.Exit(2)
	}
	findings, err := Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nezha-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: [%s] %s\n", f.Package.Fset.Position(f.Pos), f.Analyzer.Name, f.Message)
		for _, sf := range f.SuggestedFixes {
			fmt.Printf("\tfix available: %s (nezha-vet -fix)\n", sf.Message)
		}
	}
	if *fix {
		if err := applyFixes(findings); err != nil {
			fmt.Fprintf(os.Stderr, "nezha-vet: applying fixes: %v\n", err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// applyFixes applies the first suggested fix of every finding, rightmost
// edit first so earlier offsets stay valid. Overlapping edits abort.
func applyFixes(findings []Finding) error {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	var fset *token.FileSet
	for _, f := range findings {
		if len(f.SuggestedFixes) == 0 {
			continue
		}
		fset = f.Package.Fset
		for _, te := range f.SuggestedFixes[0].TextEdits {
			start, end := fset.Position(te.Pos), fset.Position(te.End)
			if start.Filename != end.Filename {
				return fmt.Errorf("edit spans files (%s, %s)", start.Filename, end.Filename)
			}
			byFile[start.Filename] = append(byFile[start.Filename], edit{start.Offset, end.Offset, te.NewText})
		}
	}
	for name, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		prev := len(src) + 1
		for _, e := range edits {
			if e.end > prev {
				return fmt.Errorf("%s: overlapping suggested fixes", name)
			}
			prev = e.start
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
		}
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: fixed\n", name)
	}
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
