package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// Finding pairs a diagnostic with where it came from. Fset is carried
// directly (not via a Package) because Finish-phase findings belong to
// no single package.
type Finding struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	PkgPath  string // "" for whole-program (Finish) findings
	Diagnostic
}

// Run applies every analyzer to every package — in the order Load
// returned them, which `go list -deps` guarantees is dependency order,
// so facts exported while analyzing a package are visible to every
// dependent package's pass — then runs each analyzer's Finish hook, and
// returns the findings sorted by file position. Analyzer errors (not
// findings — crashes) are returned as an error.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	facts := newFactStore()
	shared := map[*Analyzer]map[any]any{}
	for _, a := range analyzers {
		shared[a] = map[any]any{}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Shared:    shared[a],
				facts:     facts,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{Analyzer: a, Fset: pkg.Fset, PkgPath: pkg.PkgPath, Diagnostic: d})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset // Load shares one fset across all packages
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		pass := &Pass{Analyzer: a, Fset: fset, Shared: shared[a], facts: facts}
		pass.Report = func(d Diagnostic) {
			findings = append(findings, Finding{Analyzer: a, Fset: fset, Diagnostic: d})
		}
		if _, err := a.Finish(pass); err != nil {
			return nil, fmt.Errorf("%s: finish: %v", a.Name, err)
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := findings[i].Fset.Position(findings[i].Pos), findings[j].Fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return findings, nil
}

// jsonFinding is the -json wire form of one finding: flat location
// fields for the problem-matcher and tooling, plus the explanation path.
type jsonFinding struct {
	Analyzer string     `json:"analyzer"`
	File     string     `json:"file"`
	Line     int        `json:"line"`
	Col      int        `json:"col"`
	Message  string     `json:"message"`
	Path     []jsonStep `json:"path,omitempty"`
}

type jsonStep struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// writeJSON prints findings as one JSON array on w-equivalent stdout.
func writeJSON(findings []Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		pos := f.Fset.Position(f.Pos)
		jf := jsonFinding{
			Analyzer: f.Analyzer.Name,
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  f.Message,
		}
		for _, s := range f.Path {
			sp := f.Fset.Position(s.Pos)
			jf.Path = append(jf.Path, jsonStep{File: sp.Filename, Line: sp.Line, Message: s.Message})
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Main is the multichecker driver behind cmd/nezha-vet: parse flags, load
// the named packages, run the analyzers, print findings GNU-style, and
// exit 0 (clean), 1 (findings), or 2 (usage or load failure).
func Main(analyzers ...*Analyzer) {
	fs := flag.NewFlagSet("nezha-vet", flag.ExitOnError)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source tree")
	jsonOut := fs.Bool("json", false, "print findings as a JSON array (file, line, analyzer, message, path)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: nezha-vet [flags] [package patterns]\n\n"+
			"Runs the repo-specific invariant analyzers (see internal/lint) over the\n"+
			"named packages (default ./...). Exits 1 if any invariant is violated.\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "nezha-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	pkgs, err := Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nezha-vet: %v\n", err)
		os.Exit(2)
	}
	findings, err := Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nezha-vet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(findings); err != nil {
			fmt.Fprintf(os.Stderr, "nezha-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s: [%s] %s\n", f.Fset.Position(f.Pos), f.Analyzer.Name, f.Message)
			for _, s := range f.Path {
				fmt.Printf("\t%s: %s\n", f.Fset.Position(s.Pos), s.Message)
			}
			for _, sf := range f.SuggestedFixes {
				fmt.Printf("\tfix available: %s (nezha-vet -fix)\n", sf.Message)
			}
		}
	}
	if *fix {
		if err := applyFixes(findings); err != nil {
			fmt.Fprintf(os.Stderr, "nezha-vet: applying fixes: %v\n", err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// applyFixes applies the first suggested fix of every finding, rightmost
// edit first so earlier offsets stay valid. Overlapping edits abort.
func applyFixes(findings []Finding) error {
	type edit struct {
		start, end int
		text       []byte
	}
	byFile := map[string][]edit{}
	var fset *token.FileSet
	for _, f := range findings {
		if len(f.SuggestedFixes) == 0 {
			continue
		}
		fset = f.Fset
		for _, te := range f.SuggestedFixes[0].TextEdits {
			start, end := fset.Position(te.Pos), fset.Position(te.End)
			if start.Filename != end.Filename {
				return fmt.Errorf("edit spans files (%s, %s)", start.Filename, end.Filename)
			}
			byFile[start.Filename] = append(byFile[start.Filename], edit{start.Offset, end.Offset, te.NewText})
		}
	}
	for name, edits := range byFile {
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		prev := len(src) + 1
		for _, e := range edits {
			if e.end > prev {
				return fmt.Errorf("%s: overlapping suggested fixes", name)
			}
			prev = e.start
			src = append(src[:e.start], append(append([]byte{}, e.text...), src[e.end:]...)...)
		}
		if err := os.WriteFile(name, src, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: fixed\n", name)
	}
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
