// Package a exercises metricshygiene: literal nezha_ names, no
// constructors in loops, and the mechanical rename fix.
package a

import "metrics"

var good = metrics.Default().Counter("nezha_good_total", "a compliant name")

var renamed = metrics.Default().Counter("Nezha-Bad.Total", "fixable name") // want `metric name "Nezha-Bad.Total" does not match`

const histName = "nezha_latency_seconds"

var hist = metrics.Default().Histogram(histName, "constants are fine", nil)

func dynamic(name string) {
	metrics.Default().Gauge(name, "dynamic name") // want `metric name must be a compile-time constant`
}

func hot(r *metrics.Registry) {
	for i := 0; i < 3; i++ {
		r.Gauge("nezha_hot", "rebuilt every iteration") // want `metric Gauge constructed inside a loop`
	}
}

func hoisted(r *metrics.Registry) {
	g := r.Gauge("nezha_cold", "built once outside the loop")
	for i := 0; i < 3; i++ {
		_ = g
	}
}
