// Package metrics is a hermetic stub of internal/metrics: the Registry
// constructor surface the analyzer keys on, with no behavior.
package metrics

type Label struct{ Name, Value string }

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type Registry struct{}

func Default() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string, labels ...Label) *Counter { return nil }
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge     { return nil }
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return nil
}
