package metricshygiene

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"github.com/nezha-dag/nezha/internal/lint/analysis"
)

// Analyzer enforces metric naming and construction hygiene. See doc.go.
var Analyzer = &analysis.Analyzer{
	Name: "metricshygiene",
	Doc:  "require literal nezha_[a-z0-9_]+ metric names and no constructors inside loops",
	Run:  run,
}

var nameRE = regexp.MustCompile(`^nezha_[a-z0-9_]+$`)

// constructors are the Registry methods that mint a metric family.
var constructors = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		// Every for/range body in the file; a constructor whose position
		// falls inside one is a hot-path construction.
		type span struct{ start, end token.Pos }
		var loops []span
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, span{n.Body.Pos(), n.Body.End()})
			case *ast.RangeStmt:
				loops = append(loops, span{n.Body.Pos(), n.Body.End()})
			}
			return true
		})
		inLoop := func(p token.Pos) bool {
			for _, s := range loops {
				if s.start <= p && p < s.end {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok {
				checkCall(pass, call, inLoop(call.Pos()))
			}
			return true
		})
	}
	return nil, nil
}

// checkCall applies the rules to one metric-constructor call.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, inLoop bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !constructors[sel.Sel.Name] {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !isMetricsPkg(fn.Pkg().Path()) {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || recvName(sig.Recv().Type()) != "Registry" {
		return
	}
	if inLoop {
		pass.Reportf(call.Pos(), "metric %s constructed inside a loop; constructors lock the registry — hoist the handle out and reuse it", sel.Sel.Name)
	}
	if len(call.Args) == 0 {
		return
	}
	arg := call.Args[0]
	tv := pass.TypesInfo.Types[arg]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "metric name must be a compile-time constant so dashboards can grep it to this line")
		return
	}
	name := constant.StringVal(tv.Value)
	if nameRE.MatchString(name) {
		return
	}
	d := analysis.Diagnostic{
		Pos:     arg.Pos(),
		Message: "metric name " + strconv.Quote(name) + " does not match ^nezha_[a-z0-9_]+$",
	}
	if lit, ok := arg.(*ast.BasicLit); ok {
		if fixed := normalize(name); nameRE.MatchString(fixed) {
			d.SuggestedFixes = []analysis.SuggestedFix{{
				Message: "rename to " + strconv.Quote(fixed),
				TextEdits: []analysis.TextEdit{{
					Pos:     lit.Pos(),
					End:     lit.End(),
					NewText: []byte(strconv.Quote(fixed)),
				}},
			}}
		}
	}
	pass.Report(d)
}

// normalize mechanically repairs a metric name: lower-case, separators to
// underscores, invalid runes dropped, nezha_ prefix ensured.
func normalize(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == '-', r == '.', r == ' ', r == '/':
			b.WriteByte('_')
		}
	}
	out := b.String()
	if !strings.HasPrefix(out, "nezha_") {
		out = "nezha_" + strings.TrimPrefix(out, "_")
	}
	return out
}

// recvName unwraps a receiver type down to its named type's name.
func recvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func isMetricsPkg(path string) bool {
	return path == "metrics" || strings.HasSuffix(path, "/metrics")
}
