// Package metricshygiene keeps the internal/metrics surface scrapeable
// and cheap. The registry deduplicates by name at runtime, so a bad name
// or a hot-path construction does not crash anything — it just produces
// an unscrapeable series or a per-epoch map lookup + lock that no
// benchmark will ever attribute correctly. Those are exactly the defects
// reviews miss, hence an analyzer.
//
// Rules, at every call of Registry.Counter / Registry.Gauge /
// Registry.Histogram (however the registry is reached — Default() or a
// local instance):
//
//   - The metric name must be a compile-time constant: dynamic names
//     defeat grepping from a Grafana panel back to the line that emits
//     the series.
//   - The name must match ^nezha_[a-z0-9_]+$ — the Prometheus-safe subset
//     the whole existing fleet of dashboards assumes. A literal that only
//     violates the spelling (upper case, hyphens, missing prefix) gets a
//     mechanical suggested fix (nezha-vet -fix applies it).
//   - No construction lexically inside a for/range loop: constructors
//     take the registry lock and hash the name; hoist the handle out and
//     reuse it. (Construction in per-epoch helper functions is the same
//     defect but is not detected — this is a lexical check only.)
//
// There is no annotation escape hatch: renaming a metric or hoisting a
// constructor is always the smaller diff.
package metricshygiene
