package metricshygiene_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/lint/analysis/analysistest"
	"github.com/nezha-dag/nezha/internal/lint/metricshygiene"
)

func TestMetricsHygiene(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, analysistest.TestData(), metricshygiene.Analyzer, "a")
}
