package locksafe_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/lint/analysis/analysistest"
	"github.com/nezha-dag/nezha/internal/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), locksafe.Analyzer, "a")
}
