// Package fail is a hermetic stub of internal/fail for locksafe's tests:
// the site functions the analyzer keys on, with no behavior.
package fail

type Name string

const Registered Name = "pkg/registered"

func Hit(name Name) error                { return nil }
func HitTag(name Name, tag string) error { return nil }
func Drop(name Name, tag string) bool    { return false }
