// Package a exercises locksafe: failpoint sites and channel sends under a
// held mutex are flagged; release-first, annotated, and closure-local
// sites are not.
package a

import (
	"sync"

	"fail"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (s *S) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = fail.Hit(fail.Registered) // want `failpoint fail\.Hit hit while holding s\.mu`
	s.ch <- 1                     // want `channel send while holding s\.mu`
}

func (s *S) reader() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	_ = fail.Drop(fail.Registered, "peer") // want `failpoint fail\.Drop hit while holding s\.rw`
}

func (s *S) releaseFirst() int {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	_ = fail.Hit(fail.Registered) // lock already released: fine
	s.ch <- v
	return v
}

func (s *S) annotated() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = fail.HitTag(fail.Registered, "tag") //nezha:locksafe-ok the injected delay models a slow store stalling every caller
}

func (s *S) closure() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1 // the goroutine does not hold s.mu; scanned with a fresh stack
	}()
}

func (s *S) unlocked() {
	_ = fail.Hit(fail.Registered) // no lock anywhere: fine
	s.ch <- 1
}
