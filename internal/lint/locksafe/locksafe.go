package locksafe

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis"
)

// Analyzer flags locks held across failpoint sites and channel sends.
// See doc.go for the hazard model and the scan's limits.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "flag mutexes held across failpoint sites and channel sends",
	Run:  run,
}

// failSiteFuncs are the failpoint entry points a production path hits.
var failSiteFuncs = map[string]bool{"Hit": true, "HitTag": true, "Drop": true}

func run(pass *analysis.Pass) (any, error) {
	if isFailPkg(pass.Pkg.Path()) {
		// The substrate manages its own mutex around its own sites.
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanBody(pass, file, n.Body)
				}
			case *ast.FuncLit:
				scanBody(pass, file, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// scanBody walks one function body in source order tracking held locks.
// Nested FuncLits are skipped (they run later, under their own scan).
func scanBody(pass *analysis.Pass, file *ast.File, body *ast.BlockStmt) {
	var held []string // lock expressions, innermost last
	unhold := func(expr string) {
		for i := len(held) - 1; i >= 0; i-- {
			if held[i] == expr {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	report := func(n ast.Node, what string) {
		ann := lint.FindAnnotation(pass.Fset, file, n.Pos(), "locksafe")
		if ann.Found {
			if ann.Reason == "" {
				pass.Reportf(ann.Pos, "nezha:locksafe-ok annotation needs a reason")
			}
			return
		}
		pass.Reportf(n.Pos(), "%s while holding %s; an armed delay spec stalls the lock and a panic spec abandons it — release first, or justify with //nezha:locksafe-ok <reason>", what, strings.Join(held, ", "))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // scanned separately
		case *ast.DeferStmt:
			// defer x.Unlock() keeps x held for the rest of the scan;
			// don't let the traversal treat it as an immediate unlock.
			return false
		case *ast.ExprStmt:
			if expr, kind := lockOp(n.X); kind != "" {
				if kind == "lock" {
					held = append(held, expr)
				} else {
					unhold(expr)
				}
				return false
			}
		case *ast.SendStmt:
			if len(held) > 0 {
				report(n, "channel send")
			}
		case *ast.CallExpr:
			if name := failCallName(pass, n); name != "" && len(held) > 0 {
				report(n, "failpoint fail."+name+" hit")
			}
		}
		return true
	})
}

// lockOp classifies e as a lock ("lock") or unlock ("unlock") method call
// and returns the locked expression's source form.
func lockOp(e ast.Expr) (expr, kind string) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return types.ExprString(sel.X), "lock"
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), "unlock"
	}
	return "", ""
}

// failCallName returns the called fail-package site function, if any.
func failCallName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !isFailPkg(fn.Pkg().Path()) || !failSiteFuncs[fn.Name()] {
		return ""
	}
	return fn.Name()
}

func isFailPkg(path string) bool {
	return path == "fail" || strings.HasSuffix(path, "/fail")
}
