// Package locksafe flags mutexes held across failpoint sites and channel
// sends — the deadlock-under-failpoint hazard class. A disarmed failpoint
// is one atomic load, so holding a lock across it looks free; but arm the
// site with a delay spec and the lock is held for the whole injected
// sleep (stalling every other path into the mutex), and arm it with a
// panic spec and the mutex is abandoned locked unless every caller
// recovers. Channel sends under a lock are the same shape: the send
// blocks on a slow consumer while the lock starves everyone else. -race
// sees none of this, because nothing races — it just wedges.
//
// The check is intra-procedural and lexical: within one function body
// (closures scanned separately, with no held locks assumed), a
// `x.Lock()` / `x.RLock()` statement marks x held until a matching
// `x.Unlock()` / `x.RUnlock()` statement; `defer x.Unlock()` marks x
// held to the end of the function. While anything is held, calls to
// fail.Hit / fail.HitTag / fail.Drop and channel-send statements are
// reported. Branches are scanned in source order, so an unlock in one
// arm clears the lock for the rest of the scan — conservative in the
// direction of missing exotic flows, not of false alarms.
//
// Escape hatch, for sites where holding the lock through the failpoint
// is the simulated behavior (e.g. a WAL delay modeling a slow fsync that
// really does block other appenders):
//
//	if err := fail.HitTag(fail.KVWALSync, w.tag); err != nil { //nezha:locksafe-ok delay models a slow fsync holding the append lock
//
// The reason is mandatory; the grammar is shared with the other
// annotations (internal/lint/doc.go).
package locksafe
