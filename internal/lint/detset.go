package lint

import "strings"

// CriticalPackages are the determinism-critical packages: every replica
// must derive byte-identical results from them given the same input, so
// the detmap and detsource analyzers hold them to a stricter standard
// (no unordered iteration, no ambient entropy). Entries are import-path
// suffixes matched on a path-segment boundary.
//
// internal/check is here because the differential harness's generator and
// driver must replay bit-exactly from a seed — a nondeterministic test
// harness cannot minimize its own failures.
//
// Tests may append their testdata package paths.
var CriticalPackages = []string{
	"internal/core",
	"internal/cg",
	"internal/graph",
	"internal/mpt",
	"internal/rlp",
	"internal/check",
	"internal/mvcc",
	"internal/occda",
	// The mempool's assembly/eviction order and the flight recorder's
	// deterministic journal kinds are consensus-visible (DESIGN.md §10,
	// §16): both hold replicated ordering contracts, so they get the
	// same syntactic screening the state core does.
	"internal/mempool",
	"internal/journal",
}

// IsCritical reports whether the import path names a determinism-critical
// package.
func IsCritical(path string) bool {
	for _, s := range CriticalPackages {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
