module nezha.invalid/vetproof

go 1.22
