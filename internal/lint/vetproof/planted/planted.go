// Package planted holds one deliberate instance of each bug class the
// nezha-vet CI gate exists to catch. This module is OUTSIDE the parent
// module (its own go.mod), so `go run ./cmd/nezha-vet ./...` at the repo
// root never sees it; the CI meta-step runs the built binary in this
// directory and requires a nonzero exit naming both analyzers. If an
// analyzer regression ever lets these through, the gate — not the tree —
// fails loudly.
package planted

import (
	"sync"

	"nezha.invalid/vetproof/rlp"
)

// Leak feeds map keys to the canonical encoder in iteration order: the
// dettaint planted bug (nondeterministic ordering into an encoding sink).
func Leak(m map[string]int) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return rlp.Encode(keys)
}

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

// LockAB and LockBA acquire the two families in opposite orders: the
// lockorder planted bug (ABBA deadlock cycle).
func LockAB(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

func LockBA(x *a, y *b) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
}
