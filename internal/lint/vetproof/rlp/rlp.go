// Package rlp is a stub standing in for the real encoder. The dettaint
// sink table matches a call by the package path's last segment plus the
// function name, so Encode here is a canonical-encoding sink exactly as
// the real internal/rlp.Encode is — without importing the parent module.
package rlp

// Encode is a sink-shaped no-op.
func Encode(v any) []byte {
	_ = v
	return nil
}
