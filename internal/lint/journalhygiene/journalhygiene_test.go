package journalhygiene_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis/analysistest"
	"github.com/nezha-dag/nezha/internal/lint/journalhygiene"
)

func TestJournalHygiene(t *testing.T) {
	// journal:            a clean registry (negative case for checkRegistry).
	// journalbad/journal: every registry violation.
	// a:                  emit sites, good and bad.
	// crit:               made determinism-critical below; Emit is banned.
	lint.CriticalPackages = append(lint.CriticalPackages, "crit")
	analysistest.Run(t, analysistest.TestData(), journalhygiene.Analyzer,
		"journal", "journalbad/journal", "a", "crit")
}
