package journalhygiene

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis"
)

// Analyzer enforces the flight-recorder kind registry discipline. See
// doc.go.
var Analyzer = &analysis.Analyzer{
	Name: "journalhygiene",
	Doc:  "require registered journal.Kind constants at emit sites and keep the recorder out of determinism-critical packages",
	Run:  run,
}

// kindRE is the kind grammar: slash-separated lower-case segments, the
// same shape as failpoint site names.
var kindRE = regexp.MustCompile(`^[a-z0-9-]+(/[a-z0-9-]+)*$`)

// RegistryFile is where Kind constants must live inside the journal
// package.
const RegistryFile = "names.go"

func run(pass *analysis.Pass) (any, error) {
	if isJournalPkg(pass.Pkg.Path()) && pass.Pkg.Name() == "journal" {
		checkRegistry(pass)
		return nil, nil
	}
	journalPkg := importedJournalPkg(pass.Pkg)
	if journalPkg == nil {
		return nil, nil
	}
	registered := registeredKinds(journalPkg)
	critical := lint.IsCritical(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() != journalPkg {
				return true
			}
			switch o := obj.(type) {
			case *types.TypeName:
				// A journal.Kind(x) conversion: the laundering point for
				// dynamic kinds — x must be a registered compile-time value.
				if o.Name() != "Kind" || len(call.Args) != 1 {
					return true
				}
				checkKindExpr(pass, registered, call.Args[0], true)
			case *types.Func:
				if o.Name() != "Emit" {
					return true
				}
				if critical {
					pass.Reportf(call.Pos(), "journal.Emit in determinism-critical package %s; the flight recorder observes these packages from their call sites, it never runs inside them", pass.Pkg.Path())
				}
				if len(call.Args) > 0 {
					checkKindExpr(pass, registered, call.Args[0], false)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkKindExpr validates one kind expression. conversion marks a
// journal.Kind(x) argument, where a non-constant x is itself the
// violation.
func checkKindExpr(pass *analysis.Pass, registered map[string]string, e ast.Expr, conversion bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		v := constant.StringVal(tv.Value)
		if _, ok := registered[v]; !ok {
			pass.Reportf(e.Pos(), "unregistered journal kind %q; declare it as a journal.Kind constant in internal/journal/%s", v, RegistryFile)
		}
		return
	}
	if conversion {
		pass.Reportf(e.Pos(), "journal.Kind conversion from a non-constant; use a registered constant from internal/journal/%s", RegistryFile)
		return
	}
	// Not a compile-time constant: only acceptable when the expression is
	// already typed journal.Kind (its construction sites are checked above).
	if named, ok := tv.Type.(*types.Named); ok && named.Obj().Name() == "Kind" && named.Obj().Pkg() != nil && isJournalPkg(named.Obj().Pkg().Path()) {
		return
	}
	pass.Reportf(e.Pos(), "journal kind must be a registered journal.Kind constant from internal/journal/%s, not a dynamic %s", RegistryFile, tv.Type)
}

// checkRegistry runs inside the journal package: Kind constants live in
// names.go, match the grammar, and are unique.
func checkRegistry(pass *analysis.Pass) {
	type decl struct {
		name  string
		value string
		file  string
		pos   ast.Node
	}
	var decls []decl
	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Package).Filename)
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					c, ok := pass.TypesInfo.Defs[id].(*types.Const)
					if !ok {
						continue
					}
					named, ok := c.Type().(*types.Named)
					if !ok || named.Obj().Name() != "Kind" || named.Obj().Pkg() != pass.Pkg {
						continue
					}
					decls = append(decls, decl{
						name:  id.Name,
						value: constant.StringVal(c.Val()),
						file:  base,
						pos:   id,
					})
				}
			}
		}
	}
	sort.SliceStable(decls, func(i, j int) bool { return decls[i].pos.Pos() < decls[j].pos.Pos() })
	byValue := map[string]string{}
	for _, d := range decls {
		if d.file != RegistryFile {
			pass.Reportf(d.pos.Pos(), "journal.Kind constant %s declared in %s; the registry is %s", d.name, d.file, RegistryFile)
		}
		if !kindRE.MatchString(d.value) {
			pass.Reportf(d.pos.Pos(), "journal kind %q does not match ^[a-z0-9-]+(/[a-z0-9-]+)*$", d.value)
		}
		if prev, dup := byValue[d.value]; dup {
			pass.Reportf(d.pos.Pos(), "duplicate journal kind %q (already registered as %s)", d.value, prev)
		} else {
			byValue[d.value] = d.name
		}
	}
}

// registeredKinds reads the registry out of the imported journal
// package's scope (export data carries constant values).
func registeredKinds(journalPkg *types.Package) map[string]string {
	out := map[string]string{}
	scope := journalPkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != "Kind" || named.Obj().Pkg() != journalPkg {
			continue
		}
		out[constant.StringVal(c.Val())] = name
	}
	return out
}

// importedJournalPkg finds the directly imported journal package, if any.
func importedJournalPkg(pkg *types.Package) *types.Package {
	for _, imp := range pkg.Imports() {
		if imp.Name() == "journal" && isJournalPkg(imp.Path()) {
			return imp
		}
	}
	return nil
}

func isJournalPkg(path string) bool {
	return path == "journal" || strings.HasSuffix(path, "/journal")
}
