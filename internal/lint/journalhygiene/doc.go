// Package journalhygiene enforces the flight-recorder kind registry
// discipline around internal/journal, mirroring the failpoint analyzer:
// the diff forensics can only align what both nodes name identically, so
// the full inventory of event kinds must live in one reviewable file and
// every emit site must use it.
//
// Rules:
//
//   - Inside the journal package: every journal.Kind constant must be
//     declared in names.go (the central registry), match the kind grammar
//     ^[a-z0-9-]+(/[a-z0-9-]+)*$, and be unique — two constants with one
//     string value would silently alias two event kinds and corrupt diff
//     alignment.
//   - Everywhere else: the kind passed to (*Recorder).Emit must be a
//     registered constant (or a compile-time string equal to one).
//     Non-constant kinds are allowed only when already typed
//     journal.Kind — and every journal.Kind(...) conversion from a
//     literal is checked against the registry, so a dynamic kind can only
//     be laundered from registered values.
//   - Emit must not appear in determinism-critical packages
//     (lint.CriticalPackages): the recorder takes a mutex on the armed
//     path, so an emit inside the scheduler or MVCC core could reorder
//     the very interleavings it exists to observe. Instrumentation lives
//     at those packages' call sites instead (see internal/statedb for the
//     pattern).
//
// There is deliberately no annotation escape hatch: an unregistered kind
// is never benign — registering it is a one-line diff.
package journalhygiene
