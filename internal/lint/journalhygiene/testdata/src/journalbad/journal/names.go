// Package journal (under journalbad/) is the registry-violation corpus:
// every way a Kind declaration can break the rules.
package journal

type Kind string

const (
	GoodKind Kind = "pkg/good"
	DupKind  Kind = "pkg/good" // want `duplicate journal kind "pkg/good" \(already registered as GoodKind\)`
	BadCase  Kind = "Pkg/Bad"  // want `does not match`
	BadChars Kind = "pkg_bad"  // want `does not match`
)
