package journal

const Stray Kind = "pkg/stray" // want `journal.Kind constant Stray declared in stray.go; the registry is names.go`
