package journal

// Kind is a registered event kind; the stub mirrors internal/journal.
type Kind string

const (
	Registered Kind = "pkg/registered"
	Other      Kind = "pkg/other"
)
