// Package journal is a hermetic stub of internal/journal: same exported
// shape, no behavior. The analyzer keys on the package name and path
// suffix, so the tests never depend on the real module.
package journal

type Field struct {
	Key string
	Val uint64
	Str string
}

func F(key string, val uint64) Field { return Field{Key: key, Val: val} }
func FS(key, str string) Field       { return Field{Key: key, Str: str} }

type Recorder struct{}

func For(node string) *Recorder { return &Recorder{} }

func (r *Recorder) Emit(kind Kind, epoch uint64, fields ...Field) {}

func Deterministic(k Kind) bool { return false }
