// Package crit is appended to lint.CriticalPackages by the test: even a
// perfectly registered emit is banned here — the recorder's armed path
// takes a mutex, and determinism-critical code must not acquire one on
// behalf of an observer.
package crit

import "journal"

func emit(r *journal.Recorder) {
	r.Emit(journal.Registered, 1) // want `journal.Emit in determinism-critical package`
}
