// Package a is a production-shaped consumer of the journal stub: event
// kinds must be registered constants.
package a

import "journal"

var kinds = []journal.Kind{journal.Registered, journal.Other}

func emits(r *journal.Recorder, dyn string) {
	r.Emit(journal.Registered, 1)                  // registered constant: fine
	r.Emit("pkg/registered", 1, journal.F("k", 2)) // literal equal to a registered value: fine
	r.Emit("pkg/unknown", 1)                       // want `unregistered journal kind "pkg/unknown"`
	r.Emit(kinds[0], 1)                            // typed journal.Kind expression: construction sites are checked
	r.Emit(journal.Kind(dyn), 1)                   // want `journal.Kind conversion from a non-constant`
	k := journal.Kind("pkg/also-unknown")          // want `unregistered journal kind "pkg/also-unknown"`
	_ = k
	_ = journal.Deterministic(journal.Kind("pkg/other")) // query with a registered conversion: fine
}
