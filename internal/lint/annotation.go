package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotation is the parsed state of a `//nezha:<check>-ok <reason>` escape
// hatch next to a flagged statement. See doc.go for the grammar.
type Annotation struct {
	// Found reports that an annotation for the check is present on the
	// statement's line or the line immediately above it.
	Found bool
	// Reason is the justification text after the marker. The analyzers
	// treat an empty Reason as a violation of its own: an unexplained
	// escape hatch is worse than none.
	Reason string
	// Pos is where the annotation comment starts (for reporting a missing
	// reason at the annotation, not the statement).
	Pos token.Pos
}

// FindAnnotation looks for `//nezha:<check>-ok ...` attached to the
// statement starting at pos: either trailing on the same source line or
// alone on the line directly above. file must be the syntax tree
// containing pos.
func FindAnnotation(fset *token.FileSet, file *ast.File, pos token.Pos, check string) Annotation {
	if file == nil {
		return Annotation{}
	}
	marker := "nezha:" + check + "-ok"
	line := fset.Position(pos).Line
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // a /* */ block is never an annotation
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, marker)
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue // e.g. nezha:nondeterminism-okay
			}
			cline := fset.Position(c.Pos()).Line
			if cline != line && cline != line-1 {
				continue
			}
			return Annotation{Found: true, Reason: strings.TrimSpace(rest), Pos: c.Pos()}
		}
	}
	return Annotation{}
}
