// Package lint is the home of nezha-vet: a suite of repo-specific static
// analyzers enforcing invariants that generic tooling (go vet,
// staticcheck) cannot know about. The dynamic defenses — the differential
// harness (internal/check), the fuzz targets, the chaos sweeps
// (internal/chaos) — catch these bugs probabilistically, seed by seed;
// the analyzers move them to "cannot merge".
//
// The suite (one package per analyzer, each with its own doc.go):
//
//	detmap          unordered map ranges / multi-way selects in
//	                determinism-critical packages (CriticalPackages)
//	detsource       time.Now, global math/rand, os.Getenv in those packages
//	dettaint        flow-sensitive, interprocedural taint: nondeterministic
//	                ordering/values must not reach consensus-critical sinks
//	                (rlp.Encode, Trie.Put/Delete, Recorder.Emit) anywhere
//	                in the tree; diagnostics carry the source→sink path
//	failpoint       failpoint names registered in internal/fail/names.go;
//	                arming helpers confined to tests and internal/chaos
//	journalhygiene  flight-recorder kinds registered in
//	                internal/journal/names.go; no emits inside
//	                determinism-critical packages
//	lockorder       global mutex-acquisition-order graph is acyclic; no
//	                same-family re-acquisition while held
//	metricshygiene  literal nezha_[a-z0-9_]+ metric names, no constructors
//	                in loops
//	locksafe        no locks held across failpoint sites or channel sends
//
// dettaint and lockorder run on the CFG/dataflow layer
// (internal/lint/analysis/cfg) and compose across packages through facts
// (DESIGN.md §16); the rest are single-pass syntactic walks.
//
// This package holds what the analyzers share: the determinism-critical
// package set (detset.go) and the annotation parser (annotation.go). The
// framework they run on is internal/lint/analysis, a self-contained
// miniature of golang.org/x/tools/go/analysis (this repo has no
// third-party dependencies, by policy).
//
// # Annotation grammar
//
// Some invariants have provably-benign exceptions. The escape hatch is a
// line comment, on the flagged statement's line or the line directly
// above it:
//
//	//nezha:<check>-ok <reason>
//
// where <check> is the invariant family ("nondeterminism" for detmap and
// detsource, "dettaint", "lockorder", or "locksafe") and <reason> is
// mandatory prose explaining why this site is safe — an annotation
// without a reason is itself a diagnostic. failpoint, journalhygiene,
// and metricshygiene accept no annotations: registering a name or
// renaming a metric is always the smaller diff. Grep for `nezha:.*-ok`
// to audit every exception in the tree.
//
// # Adding an analyzer
//
// 1. Create internal/lint/<name>/ with three files:
//
//	doc.go      // the invariant, what is flagged, the escape hatch if any
//	<name>.go   // package <name>; var Analyzer = &analysis.Analyzer{
//	            //     Name: "<name>", Doc: "one-liner", Run: run,
//	            // }
//	            // func run(pass *analysis.Pass) (any, error) {
//	            //     for _, file := range pass.Files {
//	            //         ast.Inspect(file, func(n ast.Node) bool { ... })
//	            //     }
//	            //     return nil, nil
//	            // }
//	<name>_test.go  // analysistest.Run(t, analysistest.TestData(),
//	                //     <name>.Analyzer, "a")
//
// 2. Put positive and negative cases under testdata/src/a/ with
// `// want `+"`regexp`"+` comments on the lines that must be flagged;
// stub any nezha package the analyzer keys on (fail, metrics) as a
// sibling testdata package so the test is hermetic.
//
// 3. Register the Analyzer in cmd/nezha-vet/main.go and list it in this
// file, TESTING.md (tier 0), and README.md.
//
// Keep analyzers pass-pure (no globals mutated across packages), report
// through pass.Report/Reportf only, and prefer a types.Info lookup over a
// syntactic guess — the loader hands every pass full type information.
package lint
