// Package dettaint implements the nezha-vet flow analyzer that tracks
// nondeterminism interprocedurally from its sources to the sinks where
// it becomes consensus divergence.
//
// # Invariant
//
// Every byte that reaches a consensus-critical sink — canonical RLP
// encoding, a state-trie write, a deterministic journal event, the
// ordered result of mempool assembly — must be a pure function of
// replicated inputs. Nondeterminism is fine while it stays local
// (scheduling, caches, metrics); the bug is the flow that carries it
// into replicated state. detsource and detmap flag the sources
// syntactically inside the critical packages; dettaint closes the
// remaining gap: a source in ANY package whose value is laundered
// through helpers, struct fields, and call chains into a sink.
//
// # Taint domain
//
// Two kinds, because their cures differ:
//
//   - ordering taint: deterministic content in nondeterministic order
//     (keys collected by ranging a map, values received in goroutine-
//     completion order). Sorting — or any commutative fold — kills it.
//   - value taint: the content itself is nondeterministic (wall-clock
//     reads, unseeded rand, environment reads, which select case won).
//     Sorting does not help; the value must not reach the sink at all.
//
// Sources: ranging a map or channel, maps.Keys/Values/All, multi-way
// select receives, time.Now/Since/Until, package-level math/rand and
// math/rand/v2 functions (constructors excluded: a *rand.Rand may be
// deterministically seeded), os.Getenv/LookupEnv/Environ.
//
// Sanitizers: in-place sorts (sort.Sort/Slice/Strings/..., slices.Sort*)
// kill ordering taint on their argument; slices.Sorted* return clean
// copies; commutative numeric folds (+= -= *= &= |= ^=) kill ordering
// taint flowing into the accumulator; len/cap are order-insensitive;
// writing into a map kills ordering taint (insertion order does not
// change a map).
//
// # Interprocedural summaries
//
// Each function is analyzed over its CFG (internal/lint/analysis/cfg)
// bottom-up in SCC order, producing a summary exported as an object
// fact (FnFact): unconditional result taints with their traces, which
// parameters flow into results, and which parameters reach a sink
// inside the function or deeper. `go list -deps` ordering runs
// dependency packages first, so the facts compose across package
// boundaries and a flow like
//
//	node → helper pkg (collects map keys) → rlp.Encode
//
// reports at the outermost tainted call with the full multi-position
// source→sink trail attached (Diagnostic.Path, printed indented by
// nezha-vet and carried in -json output).
//
// # Escape hatch
//
//	stateRoot := r.emitDigest(parts) //nezha:dettaint-ok parts is a canonical singleton
//
// on the flagged line (or the line above) suppresses the finding; an
// annotation without a reason is itself reported. Cross-package flows
// are annotated at the call site in the reporting package.
//
// # Limits
//
// The analysis is field-insensitive (a struct shares one taint set),
// does not model channel contents or captured closure variables, treats
// comparisons as untainted (implicit/control-dependence flows are out
// of scope), and resolves only static callees — an interface call or
// function value conservatively passes its inputs through to its
// result. These are the standard precision/cost trades for a linter
// that must sweep the whole tree in seconds.
package dettaint
