package dettaint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/nezha-dag/nezha/internal/lint"
	"github.com/nezha-dag/nezha/internal/lint/analysis"
	"github.com/nezha-dag/nezha/internal/lint/analysis/cfg"
)

// Analyzer tracks nondeterminism taint interprocedurally from sources
// (map iteration order, select winners, wall-clock reads, unseeded
// rand, channel receive order) into consensus-critical sinks (RLP
// encoding, trie writes, journal events, mempool assembly order). See
// doc.go for the taint domain, the sanitizer set, and the limits.
var Analyzer = &analysis.Analyzer{
	Name:      "dettaint",
	Doc:       "flag nondeterministic values and orderings flowing into consensus-critical sinks, across function and package boundaries",
	Run:       run,
	FactTypes: []analysis.Fact{(*FnFact)(nil)},
}

// kind is a bitmask of taint flavors. A taint value carries exactly one
// bit; fact entries may carry both.
type kind uint8

const (
	// orderKind: the VALUE is deterministic content in nondeterministic
	// order (map keys collected by ranging). Sorting kills it.
	orderKind kind = 1 << iota
	// valueKind: the content itself is nondeterministic (wall-clock,
	// rand, which select case won). Sorting does not help.
	valueKind
)

func (k kind) String() string {
	switch {
	case k&orderKind != 0 && k&valueKind != 0:
		return "nondeterministic ordering and value"
	case k&orderKind != 0:
		return "nondeterministic ordering"
	default:
		return "nondeterministic value"
	}
}

// Step is one hop of a flow trace, oldest first. Positions index the
// run's shared FileSet, so a trace may cross package boundaries.
type Step struct {
	Pos token.Pos
	Msg string
}

// Trace is one taint flavor plus the path that produced it.
type Trace struct {
	Kind  kind
	Steps []Step
}

// SinkTrace records that taint arriving on a parameter reaches a sink
// inside the function (or deeper through its callees).
type SinkTrace struct {
	Kinds kind
	What  string
	Steps []Step
}

// FnFact is a function's dataflow summary, exported as an object fact
// so callers — in this package or any later-analyzed one — can see
// through the call without reanalyzing the body.
type FnFact struct {
	// Result: taints any result carries regardless of the arguments
	// (e.g. a helper that ranges one of its map parameters: iteration
	// order taints the result no matter what the caller passed).
	Result []Trace
	// ParamFlow[i]: taint of these kinds on argument i flows into a
	// result (the receiver is argument 0 for methods).
	ParamFlow map[int]kind
	// ParamSink[i]: argument i reaches a sink inside the callee.
	ParamSink map[int][]SinkTrace
}

// AFact marks FnFact as an analysis fact.
func (*FnFact) AFact() {}

const (
	maxTaints      = 8  // taints tracked per variable
	maxSteps       = 12 // hops kept per trace
	maxFactEntries = 4  // traces kept per fact list
)

// taint is one tracked flow on a value during intraprocedural analysis.
type taint struct {
	k kind // exactly one kind bit
	// param is -1 for a real source; >= 0 marks the symbolic taint
	// seeded on that parameter, used to build ParamFlow/ParamSink.
	param int
	steps []Step
}

func (t taint) id() string {
	p := token.NoPos
	if len(t.steps) > 0 {
		p = t.steps[0].Pos
	}
	return fmt.Sprintf("%d|%d|%d", t.k, t.param, p)
}

// state maps variables to the taints they may carry at a program point.
type state map[types.Object][]taint

// sinkSpec names a sink by package path tail, receiver type, and
// function name — matched structurally, so test fixtures named like the
// real packages exercise the same table.
type sinkSpec struct{ pkg, recv, name, what string }

// sinks are calls whose arguments must be deterministic: anything
// feeding them nondeterministic content or ordering diverges the chain
// state (or its audit trail) across replicas.
var sinks = []sinkSpec{
	{"rlp", "", "Encode", "canonical RLP encoding"},
	{"mpt", "Trie", "Put", "state-trie write"},
	{"mpt", "Trie", "Delete", "state-trie delete"},
	{"journal", "Recorder", "Emit", "deterministic journal event"},
}

// orderedResults are functions whose RESULT order is a cross-node
// contract: returning content in nondeterministic order is the bug even
// though no call argument is involved.
var orderedResults = []sinkSpec{
	{"mempool", "Pool", "Assemble", "mempool assembly order"},
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	fns := cfg.PackageFuncsInfo(info, pass.Files)
	for _, group := range cfg.BottomUp(info, fns) {
		// Recursive groups iterate to let summaries stabilize before the
		// reporting pass; everything else converges in one.
		recursive := len(group) > 1
		if !recursive && group[0].Obj != nil {
			for _, callee := range cfg.CallsIn(info, group[0]) {
				if callee == group[0].Obj {
					recursive = true
				}
			}
		}
		if recursive {
			for i := 0; i < 3; i++ {
				for _, fn := range group {
					fact := analyzeFunc(pass, fn, false)
					if fn.Obj != nil {
						pass.ExportObjectFact(fn.Obj, fact)
					}
				}
			}
		}
		for _, fn := range group {
			fact := analyzeFunc(pass, fn, true)
			if fn.Obj != nil {
				pass.ExportObjectFact(fn.Obj, fact)
			}
		}
	}
	return nil, nil
}

// funcAnalysis is the per-function dataflow run.
type funcAnalysis struct {
	pass    *analysis.Pass
	fn      *cfg.FuncInfo
	file    *ast.File
	seedSt  state
	paramOf map[types.Object]int
	results []types.Object // named results, read by bare returns
	// selectRecv marks comm statements of multi-way selects: their
	// received values depend on which case was ready first.
	selectRecv map[ast.Node]bool
	contract   *sinkSpec
	fact       *FnFact
	// recording gates fact/report emission: off during the fixpoint
	// iterations, on for the single post-fixpoint sweep.
	recording bool
	report    bool
	seen      map[string]bool
}

func analyzeFunc(pass *analysis.Pass, fn *cfg.FuncInfo, report bool) *FnFact {
	fa := &funcAnalysis{
		pass:       pass,
		fn:         fn,
		file:       pass.FileFor(fn.Body().Pos()),
		paramOf:    map[types.Object]int{},
		selectRecv: map[ast.Node]bool{},
		fact:       &FnFact{},
		report:     report,
		seen:       map[string]bool{},
	}
	fa.setup()
	g := fn.G
	rpo := g.RPO()
	out := make([]state, len(g.Blocks))
	for iter := 0; iter < 32; iter++ {
		changed := false
		for _, b := range rpo {
			st := fa.transfer(b, fa.inState(b, out))
			if !statesEqual(out[b.Index], st) {
				out[b.Index] = st
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	fa.recording = true
	for _, b := range rpo {
		fa.transfer(b, fa.inState(b, out))
	}
	return fa.fact
}

// setup seeds the symbolic parameter taints, finds named results, marks
// multi-way select receives, and resolves the ordered-result contract.
func (fa *funcAnalysis) setup() {
	idx := 0
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				idx++ // unnamed parameter still consumes an index
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					if obj := fa.pass.TypesInfo.Defs[name]; obj != nil {
						fa.paramOf[obj] = idx
					}
				}
				idx++
			}
		}
	}
	var results *ast.FieldList
	if d := fa.fn.Decl; d != nil {
		addList(d.Recv)
		addList(d.Type.Params)
		results = d.Type.Results
	} else if l := fa.fn.Lit; l != nil {
		addList(l.Type.Params)
		results = l.Type.Results
	}
	if results != nil {
		for _, field := range results.List {
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				if obj := fa.pass.TypesInfo.Defs[name]; obj != nil {
					fa.results = append(fa.results, obj)
				}
			}
		}
	}
	ast.Inspect(fa.fn.Body(), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			ready := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					ready++
				}
			}
			if ready < 2 {
				return true
			}
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					fa.selectRecv[cc.Comm] = true
				}
			}
		}
		return true
	})
	if fa.fn.Obj != nil {
		fa.contract = matchSpec(orderedResults, fa.fn.Obj)
	}
	fa.seedSt = state{}
	for obj, i := range fa.paramOf {
		fa.seedSt[obj] = []taint{{k: orderKind, param: i}, {k: valueKind, param: i}}
	}
}

func (fa *funcAnalysis) inState(b *cfg.Block, out []state) state {
	if b == fa.fn.G.Entry {
		return cloneState(fa.seedSt)
	}
	st := state{}
	for _, p := range b.Preds {
		for obj, ts := range out[p.Index] {
			merged := st[obj]
			for _, t := range ts {
				merged = addTaint(merged, t)
			}
			st[obj] = merged
		}
	}
	return st
}

// transfer applies one block's nodes to st, returning the out-state.
// The "defer" chain re-holds deferred calls already scanned at their
// registration point (where Go evaluates the arguments), so those
// blocks skip the sink scan.
func (fa *funcAnalysis) transfer(b *cfg.Block, st state) state {
	skipScan := b.Kind == "defer"
	for _, n := range b.Nodes {
		if fa.recording && !skipScan {
			fa.scanCalls(n, st)
		}
		fa.apply(n, st)
	}
	return st
}

// apply is the node transfer function.
func (fa *funcAnalysis) apply(n ast.Node, st state) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		fa.assign(n, st)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			if len(vs.Values) == len(vs.Names) {
				for i, name := range vs.Names {
					fa.assignTo(name, fa.exprTaint(vs.Values[i], st), st)
				}
			} else if len(vs.Values) == 1 {
				ts := fa.exprTaint(vs.Values[0], st)
				for _, name := range vs.Names {
					fa.assignTo(name, ts, st)
				}
			}
		}
	case *ast.RangeStmt:
		fa.rangeHead(n, st)
	case *ast.ReturnStmt:
		fa.ret(n, st)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			fa.stmtSanitize(call, st)
		}
	}
}

// assign handles = / := / op=.
func (fa *funcAnalysis) assign(n *ast.AssignStmt, st state) {
	sel := fa.selectRecv[n]
	withSel := func(ts []taint) []taint {
		if !sel {
			return ts
		}
		return addTaint(ts, taint{k: valueKind, param: -1, steps: []Step{
			{Pos: n.Pos(), Msg: "received from whichever select case was ready first"},
		}})
	}
	switch n.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(n.Lhs) == len(n.Rhs) {
			vals := make([][]taint, len(n.Rhs))
			for i, r := range n.Rhs {
				vals[i] = withSel(fa.exprTaint(r, st))
			}
			for i, l := range n.Lhs {
				fa.assignTo(l, vals[i], st)
			}
		} else if len(n.Rhs) == 1 {
			ts := withSel(fa.exprTaint(n.Rhs[0], st))
			for _, l := range n.Lhs {
				fa.assignTo(l, ts, st)
			}
		}
	default:
		// op=: a commutative fold of numerics (sum, product, xor, and,
		// or) yields the same final value in any accumulation order, so
		// ordering taint dies; content taint survives.
		ts := fa.exprTaint(n.Rhs[0], st)
		if commutativeAssign(n.Tok) && isNumeric(fa.pass.TypesInfo.TypeOf(n.Lhs[0])) {
			ts = dropKind(ts, orderKind)
		}
		fa.weakAssign(n.Lhs[0], ts, st)
	}
}

// assignTo writes ts into an assignable expression: strong update for a
// plain identifier, weak (accumulating) update through any projection.
func (fa *funcAnalysis) assignTo(l ast.Expr, ts []taint, st state) {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if obj := fa.objOf(l); obj != nil {
			st[obj] = capTaints(append([]taint(nil), ts...))
		}
	case *ast.IndexExpr:
		// A map write is order-insensitive: inserting the same pairs in
		// any order builds the same map, so ordering taint dies here.
		if t := fa.pass.TypesInfo.TypeOf(l.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				ts = dropKind(ts, orderKind)
			}
		}
		fa.weakAssign(l.X, ts, st)
	default:
		fa.weakAssign(l, ts, st)
	}
}

func (fa *funcAnalysis) weakAssign(l ast.Expr, ts []taint, st state) {
	obj := fa.rootObj(l)
	if obj == nil {
		return
	}
	merged := st[obj]
	for _, t := range ts {
		merged = addTaint(merged, t)
	}
	st[obj] = merged
}

// rangeHead transfers the range header: the loop variables inherit the
// operand's taints, plus fresh ordering taint when the operand iterates
// in nondeterministic order (map, channel).
func (fa *funcAnalysis) rangeHead(rs *ast.RangeStmt, st state) {
	ts := fa.exprTaint(rs.X, st)
	if msg := unorderedOperand(fa.pass.TypesInfo, rs.X); msg != "" {
		ts = addTaint(ts, taint{k: orderKind, param: -1, steps: []Step{{Pos: rs.Pos(), Msg: msg}}})
	}
	if rs.Key != nil {
		fa.assignTo(rs.Key, ts, st)
	}
	if rs.Value != nil {
		fa.assignTo(rs.Value, ts, st)
	}
}

// unorderedOperand reports why ranging the operand is order-
// nondeterministic ("" when it is not). maps.Keys/Values/All come back
// as call sources from exprTaint instead.
func unorderedOperand(info *types.Info, x ast.Expr) string {
	t := info.TypeOf(x)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "iterates a map in randomized order"
	case *types.Chan:
		return "receives in goroutine-completion order"
	}
	return ""
}

// ret records result taints into the summary and enforces the ordered-
// result contract.
func (fa *funcAnalysis) ret(n *ast.ReturnStmt, st state) {
	if !fa.recording {
		return
	}
	var all []taint
	if len(n.Results) > 0 {
		for _, r := range n.Results {
			all = unionTaints(all, fa.exprTaint(r, st))
		}
	} else {
		for _, obj := range fa.results {
			all = unionTaints(all, st[obj])
		}
	}
	for _, t := range all {
		if t.param >= 0 {
			if fa.fact.ParamFlow == nil {
				fa.fact.ParamFlow = map[int]kind{}
			}
			fa.fact.ParamFlow[t.param] |= t.k
			continue
		}
		fa.addResult(Trace{Kind: t.k, Steps: t.steps})
		if fa.report && fa.contract != nil && t.k&orderKind != 0 {
			fa.reportAt(n.Pos(), t, fmt.Sprintf(
				"result ordering of %s derives from %s; sort before returning, or justify with //nezha:dettaint-ok <reason>",
				fa.fn.Obj.Name(), sourceOf(t)),
				appendSteps(t.steps, Step{Pos: n.Pos(), Msg: "returned as " + fa.contract.what}))
		}
	}
}

// scanCalls checks every call in the node against the sink table and
// against callee ParamSink summaries. Range headers scan only their
// operand (the body statements live in their own blocks); FuncLits are
// analyzed separately.
func (fa *funcAnalysis) scanCalls(n ast.Node, st state) {
	root := n
	if rs, ok := n.(*ast.RangeStmt); ok {
		root = rs.X
	}
	ast.Inspect(root, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok {
			fa.checkSink(call, st)
		}
		return true
	})
}

func (fa *funcAnalysis) checkSink(call *ast.CallExpr, st state) {
	callee := cfg.StaticCallee(fa.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if spec := matchSpec(sinks, callee); spec != nil {
		for _, arg := range call.Args {
			for _, t := range fa.exprTaint(arg, st) {
				fa.hitSink(call, t, spec.what, nil)
			}
		}
	}
	var f FnFact
	if !fa.pass.ImportObjectFact(callee, &f) || len(f.ParamSink) == 0 {
		return
	}
	eargs := effectiveArgs(fa.pass.TypesInfo, call, callee)
	for i, arg := range eargs {
		entries := f.ParamSink[paramIndex(callee, i)]
		if len(entries) == 0 {
			continue
		}
		for _, t := range fa.exprTaint(arg, st) {
			for _, entry := range entries {
				if t.k&entry.Kinds == 0 {
					continue
				}
				mid := append([]Step{{Pos: call.Pos(), Msg: "passed to " + callee.Name()}}, entry.Steps...)
				fa.hitSink(call, t, entry.What, mid)
			}
		}
	}
}

// hitSink handles taint arriving at a sink: real taint reports, a
// symbolic parameter taint becomes a ParamSink fact so the analyzer
// reports at the outermost tainted call site instead.
func (fa *funcAnalysis) hitSink(call *ast.CallExpr, t taint, what string, extra []Step) {
	steps := appendSteps(t.steps, extra...)
	if t.param >= 0 {
		fa.addParamSink(t.param, SinkTrace{Kinds: t.k, What: what, Steps: steps})
		return
	}
	if !fa.report {
		return
	}
	fa.reportAt(call.Pos(), t, fmt.Sprintf(
		"%s (%s) flows into %s; sort or canonicalize before the sink, or justify with //nezha:dettaint-ok <reason>",
		t.k, sourceOf(t), what),
		appendSteps(steps, Step{Pos: call.Pos(), Msg: "reaches " + what}))
}

// reportAt emits one deduplicated, annotation-aware diagnostic with the
// full source-to-sink trail attached.
func (fa *funcAnalysis) reportAt(pos token.Pos, t taint, msg string, steps []Step) {
	// Dedupe by position and message, not by trace: several paths from
	// equivalent sources (two select cases, two map ranges) would
	// otherwise repeat the finding; the first trace suffices.
	key := fmt.Sprintf("%d|%s", pos, msg)
	if fa.seen[key] {
		return
	}
	fa.seen[key] = true
	ann := lint.FindAnnotation(fa.pass.Fset, fa.file, pos, "dettaint")
	if ann.Found {
		if ann.Reason == "" && !fa.seen["ann|"+fmt.Sprint(ann.Pos)] {
			fa.seen["ann|"+fmt.Sprint(ann.Pos)] = true
			fa.pass.Reportf(ann.Pos, "nezha:dettaint-ok annotation needs a reason")
		}
		return
	}
	path := make([]analysis.PathStep, len(steps))
	for i, s := range steps {
		path[i] = analysis.PathStep{Pos: s.Pos, Message: s.Msg}
	}
	fa.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg, Path: path})
}

// sourceOf names the trace's origin for the message.
func sourceOf(t taint) string {
	if len(t.steps) > 0 {
		return t.steps[0].Msg
	}
	return "a nondeterministic source"
}

// exprTaint evaluates the taints an expression may carry under st.
func (fa *funcAnalysis) exprTaint(e ast.Expr, st state) []taint {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := fa.objOf(e); obj != nil {
			return st[obj]
		}
	case *ast.ParenExpr:
		return fa.exprTaint(e.X, st)
	case *ast.StarExpr:
		return fa.exprTaint(e.X, st)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return nil // plain channel receive: contents unmodeled
		}
		return fa.exprTaint(e.X, st)
	case *ast.SelectorExpr:
		// Field access shares the root variable's taint (the analysis is
		// field-insensitive).
		if obj := fa.rootObj(e); obj != nil {
			return st[obj]
		}
	case *ast.IndexExpr:
		return fa.exprTaint(e.X, st)
	case *ast.IndexListExpr:
		return fa.exprTaint(e.X, st)
	case *ast.SliceExpr:
		return fa.exprTaint(e.X, st)
	case *ast.TypeAssertExpr:
		return fa.exprTaint(e.X, st)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return nil // comparisons: implicit flows are out of scope
		}
		return unionTaints(fa.exprTaint(e.X, st), fa.exprTaint(e.Y, st))
	case *ast.CompositeLit:
		var out []taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = unionTaints(out, fa.exprTaint(el, st))
		}
		return out
	case *ast.CallExpr:
		return fa.callTaint(e, st)
	}
	return nil
}

// callTaint evaluates a call: source table, sanitizers, callee summary,
// and the conservative pass-through default for everything unresolved.
func (fa *funcAnalysis) callTaint(call *ast.CallExpr, st state) []taint {
	info := fa.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return nil // a count is order-insensitive
			case "append", "min", "max", "copy":
				var out []taint
				for _, a := range call.Args {
					out = unionTaints(out, fa.exprTaint(a, st))
				}
				return out
			default:
				return nil
			}
		}
	}
	callee := cfg.StaticCallee(info, call)
	if callee != nil {
		if k, desc := sourceDesc(callee); k != 0 {
			return []taint{{k: k, param: -1, steps: []Step{{Pos: call.Pos(), Msg: desc}}}}
		}
		if exprSanitizer(callee) {
			var out []taint
			for _, a := range call.Args {
				out = unionTaints(out, fa.exprTaint(a, st))
			}
			return dropKind(out, orderKind)
		}
		var f FnFact
		if fa.pass.ImportObjectFact(callee, &f) {
			var out []taint
			for _, tr := range f.Result {
				out = addTaint(out, taint{k: tr.Kind, param: -1,
					steps: appendSteps(tr.Steps, Step{Pos: call.Pos(), Msg: "via result of " + callee.Name()})})
			}
			eargs := effectiveArgs(info, call, callee)
			for i, arg := range eargs {
				mask := f.ParamFlow[paramIndex(callee, i)]
				if mask == 0 {
					continue
				}
				for _, t := range fa.exprTaint(arg, st) {
					if t.k&mask == 0 {
						continue
					}
					nt := t
					nt.steps = appendSteps(t.steps, Step{Pos: call.Pos(), Msg: "flows through " + callee.Name()})
					out = addTaint(out, nt)
				}
			}
			return out
		}
	}
	// Unresolved or summary-less callee (stdlib, interface method,
	// function value): assume it passes its inputs through. That keeps
	// fmt.Sprintf / strings.Join / slices.Collect chains tainted.
	var out []taint
	for _, a := range call.Args {
		out = unionTaints(out, fa.exprTaint(a, st))
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); !ok || !isPkgName(info, id) {
			out = unionTaints(out, fa.exprTaint(sel.X, st))
		}
	}
	return out
}

// stmtSanitize kills ordering taint on the argument of an in-place sort
// used as a statement: the canonical collect-then-sort idiom.
func (fa *funcAnalysis) stmtSanitize(call *ast.CallExpr, st state) {
	fn := cfg.StaticCallee(fa.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return
	}
	ok := false
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			ok = true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			ok = true
		}
	}
	if !ok {
		return
	}
	if obj := fa.rootObj(call.Args[0]); obj != nil {
		st[obj] = dropKind(st[obj], orderKind)
	}
}

// sourceDesc classifies a callee as a taint source. Methods are never
// sources (a *rand.Rand may be deterministically seeded); package-level
// rand functions use the global, unseeded source.
func sourceDesc(fn *types.Func) (kind, string) {
	pkg := fn.Pkg()
	if pkg == nil || fn.Type().(*types.Signature).Recv() != nil {
		return 0, ""
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return valueKind, "wall-clock time." + fn.Name()
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return valueKind, "environment read os." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		switch fn.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return 0, ""
		}
		return valueKind, "unseeded " + pkg.Path() + "." + fn.Name()
	case "maps":
		switch fn.Name() {
		case "Keys", "Values", "All":
			return orderKind, "map iteration order via maps." + fn.Name()
		}
	}
	return 0, ""
}

// exprSanitizer: sort-into-a-fresh-slice helpers whose result is ordered
// no matter how the input sequence iterates.
func exprSanitizer(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "slices" {
		return false
	}
	switch fn.Name() {
	case "Sorted", "SortedFunc", "SortedStableFunc":
		return true
	}
	return false
}

// matchSpec matches a callee against a sink table by package path tail,
// receiver type name, and function name.
func matchSpec(specs []sinkSpec, fn *types.Func) *sinkSpec {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	seg := lastSegment(fn.Pkg().Path())
	recv := recvTypeName(fn)
	for i := range specs {
		s := &specs[i]
		if s.pkg == seg && s.name == fn.Name() && s.recv == recv {
			return s
		}
	}
	return nil
}

func lastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func recvTypeName(fn *types.Func) string {
	r := fn.Type().(*types.Signature).Recv()
	if r == nil {
		return ""
	}
	t := r.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// effectiveArgs aligns call arguments with the callee's parameter
// indexing, which counts the receiver as argument 0 for methods.
func effectiveArgs(info *types.Info, call *ast.CallExpr, callee *types.Func) []ast.Expr {
	if callee.Type().(*types.Signature).Recv() == nil {
		return call.Args
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return append([]ast.Expr{sel.X}, call.Args...)
		}
	}
	return call.Args // method expression: receiver is already args[0]
}

// paramIndex folds variadic argument positions onto the last parameter.
func paramIndex(callee *types.Func, i int) int {
	sig := callee.Type().(*types.Signature)
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if n > 0 && i >= n {
		return n - 1
	}
	return i
}

func (fa *funcAnalysis) objOf(id *ast.Ident) types.Object {
	if obj := fa.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return fa.pass.TypesInfo.Uses[id]
}

// rootObj resolves an lvalue-ish expression to its root variable.
func (fa *funcAnalysis) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return fa.objOf(x)
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if isPkgName(fa.pass.TypesInfo, id) {
					return fa.pass.TypesInfo.Uses[x.Sel]
				}
			}
			e = x.X
		default:
			return nil
		}
	}
}

func isPkgName(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.PkgName)
	return ok
}

// fact accumulation with dedupe and caps.

func (fa *funcAnalysis) addResult(tr Trace) {
	key := traceKey(tr.Kind, tr.Steps)
	for _, e := range fa.fact.Result {
		if traceKey(e.Kind, e.Steps) == key {
			return
		}
	}
	if len(fa.fact.Result) < maxFactEntries {
		fa.fact.Result = append(fa.fact.Result, tr)
	}
}

func (fa *funcAnalysis) addParamSink(i int, e SinkTrace) {
	if fa.fact.ParamSink == nil {
		fa.fact.ParamSink = map[int][]SinkTrace{}
	}
	key := e.What + "|" + traceKey(e.Kinds, e.Steps)
	for _, have := range fa.fact.ParamSink[i] {
		if have.What+"|"+traceKey(have.Kinds, have.Steps) == key {
			return
		}
	}
	if len(fa.fact.ParamSink[i]) < maxFactEntries {
		fa.fact.ParamSink[i] = append(fa.fact.ParamSink[i], e)
	}
}

func traceKey(k kind, steps []Step) string {
	p := token.NoPos
	if len(steps) > 0 {
		p = steps[0].Pos
	}
	return fmt.Sprintf("%d|%d", k, p)
}

// taint-set helpers. Slices are treated as immutable: every mutation
// copies, so states can share them freely.

func addTaint(list []taint, t taint) []taint {
	id := t.id()
	for _, e := range list {
		if e.id() == id {
			return list
		}
	}
	if len(list) >= maxTaints {
		return list
	}
	out := make([]taint, len(list)+1)
	copy(out, list)
	out[len(list)] = t
	return out
}

func unionTaints(a, b []taint) []taint {
	for _, t := range b {
		a = addTaint(a, t)
	}
	return a
}

func dropKind(list []taint, k kind) []taint {
	var out []taint
	for _, t := range list {
		if t.k&k == 0 {
			out = append(out, t)
		}
	}
	return out
}

func capTaints(list []taint) []taint {
	if len(list) > maxTaints {
		return list[:maxTaints]
	}
	return list
}

func appendSteps(steps []Step, extra ...Step) []Step {
	out := make([]Step, 0, len(steps)+len(extra))
	out = append(out, steps...)
	out = append(out, extra...)
	if len(out) > maxSteps {
		out = out[:maxSteps]
	}
	return out
}

func cloneState(st state) state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func statesEqual(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for obj, ts := range a {
		bs, ok := b[obj]
		if !ok || len(bs) != len(ts) {
			return false
		}
		ids := map[string]bool{}
		for _, t := range bs {
			ids[t.id()] = true
		}
		for _, t := range ts {
			if !ids[t.id()] {
				return false
			}
		}
	}
	return true
}

func commutativeAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
