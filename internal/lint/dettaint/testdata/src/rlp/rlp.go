// Package rlp mirrors the real encoder's sink surface: dettaint matches
// sinks by package-path tail + name, so this fixture exercises the same
// table entry as github.com/nezha-dag/nezha/internal/rlp.
package rlp

// Item is a minimal stand-in for the encoder's item type.
type Item struct {
	S string
	L []Item
}

// Encode is the sink: the canonical byte encoding of it.
func Encode(it Item) []byte { return []byte(it.S) }
