// Package journal mirrors the real flight recorder's sink surface.
package journal

// Field is one key/value pair of an event payload.
type Field struct {
	Key string
	Val uint64
}

// F builds a payload field (parameters flow into the result).
func F(key string, val uint64) Field { return Field{Key: key, Val: val} }

// Recorder is a minimal stand-in for the flight recorder.
type Recorder struct{ n int }

// Emit is the sink: a deterministic journal event.
func (r *Recorder) Emit(kind string, fields ...Field) { r.n += len(fields) }
