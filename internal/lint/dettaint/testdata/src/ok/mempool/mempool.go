// The sorted twin of the mempool fixture: the same collect loop, but a
// total-order sort before returning satisfies the contract.
package mempool

import "sort"

// Tx is one queued transaction.
type Tx struct {
	Sender string
	Nonce  uint64
}

// Pool is a minimal stand-in for the real mempool.
type Pool struct {
	pending map[string][]Tx
}

// Assemble returns the next batch in (sender, nonce) order.
func (p *Pool) Assemble(max int) []Tx {
	var out []Tx
	for _, txs := range p.pending {
		out = append(out, txs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sender != out[j].Sender {
			return out[i].Sender < out[j].Sender
		}
		return out[i].Nonce < out[j].Nonce
	})
	return out
}
