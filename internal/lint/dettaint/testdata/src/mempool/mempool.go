// Package mempool mirrors the real pool's ordered-result contract:
// Assemble's return order is consensus-visible, so deriving it from map
// iteration order is the bug even with no sink call in sight.
package mempool

// Tx is one queued transaction.
type Tx struct {
	Sender string
	Nonce  uint64
}

// Pool is a minimal stand-in for the real mempool.
type Pool struct {
	pending map[string][]Tx
}

// Assemble returns the next batch in map iteration order — the planted
// contract violation.
func (p *Pool) Assemble(max int) []Tx {
	var out []Tx
	for _, txs := range p.pending {
		out = append(out, txs...)
	}
	return out // want `result ordering of Assemble derives from`
}
