package a

import (
	"sort"
	"time"

	"helper"
	"journal"
	"rlp"
)

// Local flow: map iteration order reaches the encoder unsorted.
func encodeKeysUnsorted(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	it := rlp.Item{}
	for _, k := range keys {
		it.S += k
	}
	return rlp.Encode(it) // want `nondeterministic ordering .* flows into canonical RLP encoding`
}

// The canonical fix: sorting kills ordering taint.
func encodeKeysSorted(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	it := rlp.Item{}
	for _, k := range keys {
		it.S += k
	}
	return rlp.Encode(it)
}

// A commutative fold is order-insensitive: summing map values in any
// iteration order gives the same total.
func encodeSum(m map[string]uint64) []byte {
	var total uint64
	for _, v := range m {
		total += v
	}
	return rlp.Encode(rlp.Item{S: string(rune(total))})
}

// Value taint: wall-clock content can never be canonicalized away.
func stampNow() []byte {
	now := time.Now().UnixNano()
	return rlp.Encode(rlp.Item{S: string(rune(now))}) // want `nondeterministic value .* flows into canonical RLP encoding`
}

// The escape hatch suppresses a justified flow.
func stampAnnotated() []byte {
	now := time.Now().UnixNano()
	return rlp.Encode(rlp.Item{S: string(rune(now))}) //nezha:dettaint-ok fixture exercising the annotation path
}

// Cross-package laundering through a result: the source (map range) is
// inside helper.Keys, the sink is here.
func encodeHelperKeys(m map[string]int) []byte {
	ks := helper.Keys(m)
	it := rlp.Item{}
	for _, k := range ks {
		it.S += k
	}
	return rlp.Encode(it) // want `nondeterministic ordering .* flows into canonical RLP encoding`
}

// Sorting the laundered result sanitizes it.
func encodeHelperKeysSorted(m map[string]int) []byte {
	ks := helper.Keys(m)
	sort.Strings(ks)
	it := rlp.Item{}
	for _, k := range ks {
		it.S += k
	}
	return rlp.Encode(it)
}

// Cross-package laundering through a parameter: the sink (rlp.Encode)
// is inside helper.EncodeJoined, the source is here — the diagnostic
// lands on the outermost tainted call.
func encodeJoinedUnsorted(m map[string]int) []byte {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return helper.EncodeJoined(keys) // want `nondeterministic ordering .* flows into canonical RLP encoding`
}

// Per-iteration journal emission in map order diverges the journal.
func emitKeys(r *journal.Recorder, m map[string]uint64) {
	for k, v := range m {
		r.Emit(k, journal.F(k, v)) // want `nondeterministic ordering .* flows into deterministic journal event`
	}
}

// len() of an order-tainted collection is order-insensitive.
func emitCount(r *journal.Recorder, m map[string]uint64) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	r.Emit("count", journal.F("n", uint64(len(keys))))
}

// The select winner's value depends on scheduling.
func emitWinner(r *journal.Recorder, a, b chan uint64) {
	var v uint64
	select {
	case v = <-a:
	case v = <-b:
	}
	r.Emit("winner", journal.F("v", v)) // want `nondeterministic value .* flows into deterministic journal event`
}
