// Package helper is the laundering layer of the cross-package tests:
// it has no sink calls with locally tainted data, so analyzing it alone
// reports nothing — the findings only exist because its summaries
// (result taint, parameter-to-sink flow) compose into callers.
package helper

import "rlp"

// Keys returns m's keys in iteration order: the result carries ordering
// taint no matter what the caller passes.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// EncodeJoined concatenates the parts into the canonical encoding: a
// sink reached through a parameter, so the CALLER owns the ordering.
func EncodeJoined(parts []string) []byte {
	it := rlp.Item{}
	for _, p := range parts {
		it.S += p
	}
	return rlp.Encode(it)
}
