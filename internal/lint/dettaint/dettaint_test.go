package dettaint_test

import (
	"testing"

	"github.com/nezha-dag/nezha/internal/lint/analysis/analysistest"
	"github.com/nezha-dag/nezha/internal/lint/dettaint"
)

func TestDettaint(t *testing.T) {
	// Dependency packages listed first, as the real checker's `go list
	// -deps` ordering does, so summaries flow bottom-up.
	analysistest.Run(t, analysistest.TestData(), dettaint.Analyzer,
		"rlp", "journal", "helper", "a", "mempool", "ok/mempool")
}
