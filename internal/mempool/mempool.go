// Package mempool is the sustained-load ingestion front end (ROADMAP
// item 2): a sender-sharded transaction pool sitting between submitters
// and block assembly.
//
// Design:
//
//   - Sharding is by sender address, so one hot submitter contends on one
//     shard lock while the other shards admit in parallel. Within a shard
//     each sender owns a nonce-ordered queue.
//   - Admission is where ALL policy lives — duplicate and replay
//     rejection, replacement-by-fee, per-sender rate limits, per-sender
//     and per-shard capacity — and every rejection is a typed error the
//     submitter can react to (back off, re-price, re-sign), never a
//     silent drop. This keeps policy OUT of the determinism-critical
//     pipeline: once transactions are in blocks, the epoch pipeline
//     neither knows nor cares how they were admitted.
//   - Assembly (Assemble/MarkIncluded) is content-deterministic: given
//     the same pool contents, every call produces the same transaction
//     sequence regardless of map iteration order or admission
//     interleaving. Eviction picks its victim by a total order for the
//     same reason. That is what lets the chaos and differential oracles
//     run mempool-fed miners without giving up replayability.
//
// Backpressure contract: Admit returns nil iff the transaction is queued
// (or replaced an older pricing of itself). Every other outcome is one of
// the Err* sentinels below, wrapped with context; errors.Is works on all
// of them. AdmitBatch reports per-transaction outcomes and never aborts
// the batch. Occupancy and per-reason drop counts are exported as
// nezha_mempool_* metrics.
package mempool

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nezha-dag/nezha/internal/crypto"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/metrics"
	"github.com/nezha-dag/nezha/internal/types"
)

// Typed admission errors — the backpressure surface submitters see.
var (
	// ErrDuplicate: the exact transaction (same content hash) is already
	// queued.
	ErrDuplicate = errors.New("mempool: duplicate transaction")
	// ErrNonceTooLow: the nonce is below the sender's inclusion floor —
	// a transaction with that nonce was already assembled into a block.
	ErrNonceTooLow = errors.New("mempool: nonce already included")
	// ErrUnderpriced: a transaction with this sender+nonce is queued and
	// the replacement does not raise its priority.
	ErrUnderpriced = errors.New("mempool: replacement does not raise priority")
	// ErrSenderLimit: the sender's queue is at SenderCap.
	ErrSenderLimit = errors.New("mempool: sender queue full")
	// ErrRateLimited: the sender exceeded its admission rate; retry later.
	ErrRateLimited = errors.New("mempool: sender rate limit exceeded")
	// ErrPoolFull: the shard is at capacity and the transaction's priority
	// does not beat the eviction victim's.
	ErrPoolFull = errors.New("mempool: shard full and priority too low")
	// ErrBadSignature: signature verification failed at admission.
	ErrBadSignature = errors.New("mempool: invalid signature")
)

// Config parameterizes a Pool. The zero value is usable: New fills every
// unset knob with the defaults below.
type Config struct {
	// Shards is the number of sender-hash shards (default 16).
	Shards int
	// ShardCap bounds queued transactions per shard (default 4096);
	// admission into a full shard evicts the shard's weakest tail
	// transaction or fails with ErrPoolFull. Negative means unbounded.
	ShardCap int
	// SenderCap bounds queued transactions per sender (default 64).
	// Negative means unbounded.
	SenderCap int
	// Rate is the per-sender admission rate in transactions per second
	// (token bucket, Burst deep); 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket depth (default: Rate rounded up, min 1).
	Burst int
	// PriorityOf orders transactions into blocks and picks eviction
	// victims. The default uses tx.Gas — the gas limit a submitter
	// attaches is this codebase's fee proxy (transactions carry no
	// separate fee field; see DESIGN.md §14).
	PriorityOf func(*types.Transaction) uint64
	// StrictNonce makes assembly take only nonce-contiguous runs per
	// sender (a gap parks everything above it until the missing nonce
	// arrives). Off by default because the legacy workload generators
	// draw nonces from a global counter, which is sparse per sender;
	// enable it together with the generators' PerSenderNonces option.
	StrictNonce bool
	// VerifySignatures makes admission verify every signature — the
	// ingestion twin of the pipeline's background prevalidation, batched
	// across Workers in AdmitBatch so the per-tx cost is amortized the
	// same way (the pattern of node's checkSignatures).
	VerifySignatures bool
	// Workers sizes AdmitBatch's signature-verification pool; 0 means
	// GOMAXPROCS.
	Workers int
	// Clock injects time for the rate limiter (tests freeze it). Rate
	// limiting is wall-clock admission policy — it never participates in
	// assembly determinism. Default time.Now.
	Clock func() time.Time
	// Tag labels the pool's failpoint hits and metrics (typically the
	// owning node's id).
	Tag string
}

func (cfg *Config) withDefaults() {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.ShardCap == 0 {
		cfg.ShardCap = 4096
	}
	if cfg.SenderCap == 0 {
		cfg.SenderCap = 64
	}
	if cfg.Burst <= 0 {
		cfg.Burst = int(cfg.Rate + 0.999)
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	if cfg.PriorityOf == nil {
		cfg.PriorityOf = func(tx *types.Transaction) uint64 { return tx.Gas }
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now //nezha:nondeterminism-ok Clock feeds only local rate-limiter refill; admission timing is per-node, never replicated
	}
}

// senderQueue is one sender's nonce-ordered queue plus its rate-limiter
// bucket. Guarded by the owning shard's mutex.
type senderQueue struct {
	// floor is the lowest admissible nonce: one above the highest nonce
	// ever assembled into a block for this sender. 0 = nothing included.
	floor uint64
	txs   map[uint64]*types.Transaction
	// nonces mirrors the map keys in ascending order (SenderCap is small,
	// so ordered insertion is cheaper than re-sorting on every read).
	nonces []uint64
	tokens float64
	last   time.Time
}

func (q *senderQueue) insertNonce(n uint64) {
	i := sort.Search(len(q.nonces), func(i int) bool { return q.nonces[i] >= n })
	q.nonces = append(q.nonces, 0)
	copy(q.nonces[i+1:], q.nonces[i:])
	q.nonces[i] = n
}

func (q *senderQueue) removeNonce(n uint64) {
	i := sort.Search(len(q.nonces), func(i int) bool { return q.nonces[i] >= n })
	if i < len(q.nonces) && q.nonces[i] == n {
		q.nonces = append(q.nonces[:i], q.nonces[i+1:]...)
	}
}

// shard owns the senders whose addresses hash to it. size duplicates the
// queue total as an atomic so the admission fast path can pre-check
// capacity (and hit the eviction failpoint) without the lock.
type shard struct {
	mu      sync.Mutex
	senders map[types.Address]*senderQueue
	size    atomic.Int64
}

// Pool is the sharded transaction pool. All methods are safe for
// concurrent use.
type Pool struct {
	cfg    Config
	shards []*shard
	size   atomic.Int64

	admitted  *metrics.Counter
	evicted   *metrics.Counter
	occupancy *metrics.Gauge
	drops     map[string]*metrics.Counter
}

// New builds a pool and registers its nezha_mempool_* metric families on
// the process registry.
func New(cfg Config) *Pool {
	cfg.withDefaults()
	p := &Pool{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range p.shards {
		p.shards[i] = &shard{senders: make(map[types.Address]*senderQueue)}
	}
	reg := metrics.Default()
	nodeLabel := metrics.Label{Name: "node", Value: cfg.Tag}
	p.admitted = reg.Counter("nezha_mempool_admitted_total", "transactions admitted into the pool", nodeLabel)
	p.evicted = reg.Counter("nezha_mempool_evicted_total", "queued transactions evicted by capacity pressure", nodeLabel)
	p.occupancy = reg.Gauge("nezha_mempool_occupancy", "transactions currently queued", nodeLabel)
	reason := func(r string) metrics.Label { return metrics.Label{Name: "reason", Value: r} }
	p.drops = map[string]*metrics.Counter{
		dropDuplicate: reg.Counter("nezha_mempool_dropped_total", "transactions rejected at admission, by reason", nodeLabel, reason(dropDuplicate)),
		dropNonceLow:  reg.Counter("nezha_mempool_dropped_total", "transactions rejected at admission, by reason", nodeLabel, reason(dropNonceLow)),
		dropPriced:    reg.Counter("nezha_mempool_dropped_total", "transactions rejected at admission, by reason", nodeLabel, reason(dropPriced)),
		dropSender:    reg.Counter("nezha_mempool_dropped_total", "transactions rejected at admission, by reason", nodeLabel, reason(dropSender)),
		dropRate:      reg.Counter("nezha_mempool_dropped_total", "transactions rejected at admission, by reason", nodeLabel, reason(dropRate)),
		dropFull:      reg.Counter("nezha_mempool_dropped_total", "transactions rejected at admission, by reason", nodeLabel, reason(dropFull)),
		dropSig:       reg.Counter("nezha_mempool_dropped_total", "transactions rejected at admission, by reason", nodeLabel, reason(dropSig)),
		dropInjected:  reg.Counter("nezha_mempool_dropped_total", "transactions rejected at admission, by reason", nodeLabel, reason(dropInjected)),
	}
	return p
}

// Drop-reason label values.
const (
	dropDuplicate = "duplicate"
	dropNonceLow  = "nonce_low"
	dropPriced    = "underpriced"
	dropSender    = "sender_limit"
	dropRate      = "rate_limit"
	dropFull      = "pool_full"
	dropSig       = "bad_signature"
	dropInjected  = "injected"
)

func (p *Pool) drop(reason string) {
	if c := p.drops[reason]; c != nil {
		c.Inc()
	}
}

// shardOf hashes a sender address to its shard (FNV-1a).
func (p *Pool) shardOf(addr types.Address) *shard {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range addr {
		h ^= uint64(b)
		h *= prime
	}
	return p.shards[h%uint64(len(p.shards))]
}

// Len returns the number of queued transactions.
func (p *Pool) Len() int { return int(p.size.Load()) }

// PendingFor returns how many transactions the sender has queued.
func (p *Pool) PendingFor(addr types.Address) int {
	s := p.shardOf(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.senders[addr]; q != nil {
		return len(q.nonces)
	}
	return 0
}

// Floor returns the sender's inclusion floor (one above the highest nonce
// already assembled; 0 when nothing was included yet).
func (p *Pool) Floor(addr types.Address) uint64 {
	s := p.shardOf(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.senders[addr]; q != nil {
		return q.floor
	}
	return 0
}

// Admit verifies (when configured) and queues one transaction. A nil
// return means the transaction is in the pool; every non-nil return wraps
// one of the Err* sentinels (or a failpoint-injected error) and counts
// into nezha_mempool_dropped_total.
func (p *Pool) Admit(tx *types.Transaction) error {
	if p.cfg.VerifySignatures {
		if err := crypto.VerifyTx(tx); err != nil {
			p.drop(dropSig)
			return fmt.Errorf("%w: %v", ErrBadSignature, err)
		}
	}
	return p.admitVerified(tx)
}

// admitVerified is Admit after signature checking (AdmitBatch verifies in
// bulk and calls this directly).
func (p *Pool) admitVerified(tx *types.Transaction) error {
	// Failpoint: reject at the admission boundary — the chaos harness
	// uses it to prove submitters survive backpressure-shaped faults.
	if err := fail.HitTag(fail.MempoolAdmit, p.cfg.Tag); err != nil {
		p.drop(dropInjected)
		return fmt.Errorf("mempool: admit %s: %w", tx.From.Hex()[:8], err)
	}
	s := p.shardOf(tx.From)
	// Failpoint: the eviction decision, pre-checked outside the shard
	// lock (the atomic size may lag the locked truth by a beat — fault
	// injection tolerates approximate triggering, lock-held failpoints
	// do not tolerate the lock).
	if p.cfg.ShardCap > 0 && int(s.size.Load()) >= p.cfg.ShardCap {
		if err := fail.HitTag(fail.MempoolEvict, p.cfg.Tag); err != nil {
			p.drop(dropInjected)
			return fmt.Errorf("mempool: evict for %s: %w", tx.From.Hex()[:8], err)
		}
	}

	s.mu.Lock()
	err := p.admitLocked(s, tx)
	s.mu.Unlock()
	if err == nil {
		p.admitted.Inc()
		p.occupancy.Set(float64(p.size.Load()))
	}
	return err
}

func (p *Pool) admitLocked(s *shard, tx *types.Transaction) error {
	q := s.senders[tx.From]
	if q == nil {
		q = &senderQueue{txs: make(map[uint64]*types.Transaction), last: p.cfg.Clock()}
		if p.cfg.Rate > 0 {
			q.tokens = float64(p.cfg.Burst)
		}
		s.senders[tx.From] = q
	}
	if q.floor > 0 && tx.Nonce < q.floor {
		p.drop(dropNonceLow)
		return fmt.Errorf("%w: nonce %d < floor %d", ErrNonceTooLow, tx.Nonce, q.floor)
	}
	if old, queued := q.txs[tx.Nonce]; queued {
		// Replacement-by-fee: the same sender re-prices a queued nonce.
		// It must strictly raise the priority, else churn is free.
		if old.Hash() == tx.Hash() {
			p.drop(dropDuplicate)
			return fmt.Errorf("%w: %s nonce %d", ErrDuplicate, tx.From.Hex()[:8], tx.Nonce)
		}
		if p.cfg.PriorityOf(tx) <= p.cfg.PriorityOf(old) {
			p.drop(dropPriced)
			return fmt.Errorf("%w: nonce %d priority %d <= %d", ErrUnderpriced,
				tx.Nonce, p.cfg.PriorityOf(tx), p.cfg.PriorityOf(old))
		}
		q.txs[tx.Nonce] = tx
		return nil
	}
	// Rate limiting applies to new queue entries only (a replacement adds
	// no assembly load). Token bucket: Rate tokens/sec, Burst deep.
	if p.cfg.Rate > 0 {
		now := p.cfg.Clock()
		q.tokens += now.Sub(q.last).Seconds() * p.cfg.Rate
		q.last = now
		if q.tokens > float64(p.cfg.Burst) {
			q.tokens = float64(p.cfg.Burst)
		}
		if q.tokens < 1 {
			p.drop(dropRate)
			return fmt.Errorf("%w: %s", ErrRateLimited, tx.From.Hex()[:8])
		}
		q.tokens--
	}
	if p.cfg.SenderCap > 0 && len(q.nonces) >= p.cfg.SenderCap {
		p.drop(dropSender)
		return fmt.Errorf("%w: %s at %d", ErrSenderLimit, tx.From.Hex()[:8], len(q.nonces))
	}
	if p.cfg.ShardCap > 0 && int(s.size.Load()) >= p.cfg.ShardCap {
		if err := p.evictLocked(s, tx); err != nil {
			return err
		}
	}
	q.txs[tx.Nonce] = tx
	q.insertNonce(tx.Nonce)
	s.size.Add(1)
	p.size.Add(1)
	return nil
}

// evictLocked frees one slot in a full shard for the incoming transaction,
// or rejects the incoming transaction as the weakest.
//
// The victim is chosen by a total order over content, never by map
// iteration: each sender's only evictable transaction is its TAIL (highest
// queued nonce — evicting mid-queue would create a gap StrictNonce
// assembly could never close), and among tails the victim is the minimum
// by (priority, sender, nonce). The incoming transaction must beat the
// victim in the same order, else ErrPoolFull. Identical pool contents
// therefore always evict the same transaction.
func (p *Pool) evictLocked(s *shard, incoming *types.Transaction) error {
	var (
		victim  *types.Transaction
		victimQ *senderQueue
	)
	for addr, q := range s.senders { //nezha:nondeterminism-ok min by the total (priority, sender, nonce) order; the victim is independent of iteration order
		if len(q.nonces) == 0 {
			continue
		}
		tail := q.txs[q.nonces[len(q.nonces)-1]]
		if victim == nil || p.weaker(tail, addr, victim, victim.From) {
			victim, victimQ = tail, q
		}
	}
	if victim == nil || !p.weaker(victim, victim.From, incoming, incoming.From) {
		p.drop(dropFull)
		return fmt.Errorf("%w: shard at %d", ErrPoolFull, s.size.Load())
	}
	victimQ.removeNonce(victim.Nonce)
	delete(victimQ.txs, victim.Nonce)
	s.size.Add(-1)
	p.size.Add(-1)
	p.evicted.Inc()
	return nil
}

// weaker reports whether (a, addrA) precedes (b, addrB) in the eviction
// order: lower priority first, then higher sender address, then higher
// nonce — a strict total order because (sender, nonce) is unique.
func (p *Pool) weaker(a *types.Transaction, addrA types.Address, b *types.Transaction, addrB types.Address) bool {
	pa, pb := p.cfg.PriorityOf(a), p.cfg.PriorityOf(b)
	if pa != pb {
		return pa < pb
	}
	if c := bytes.Compare(addrA[:], addrB[:]); c != 0 {
		return c > 0
	}
	return a.Nonce > b.Nonce
}

// AdmitBatch admits a batch, verifying signatures across the worker pool
// first (the batched twin of the node pipeline's background
// prevalidation — an atomic work counter over Workers goroutines, so a
// gossip burst pays per-core signature cost, not per-tx). It returns the
// number admitted and one error slot per input (nil = admitted).
func (p *Pool) AdmitBatch(txs []*types.Transaction) (int, []error) {
	errs := make([]error, len(txs))
	if p.cfg.VerifySignatures && len(txs) > 0 {
		workers := p.cfg.Workers
		if workers > len(txs) {
			workers = len(txs)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(txs) {
						return
					}
					if err := crypto.VerifyTx(txs[i]); err != nil {
						errs[i] = fmt.Errorf("%w: %v", ErrBadSignature, err)
					}
				}
			}()
		}
		wg.Wait()
	}
	admitted := 0
	for i, tx := range txs {
		if errs[i] != nil {
			p.drop(dropSig)
			continue
		}
		if errs[i] = p.admitVerified(tx); errs[i] == nil {
			admitted++
		}
	}
	return admitted, errs
}

// assemblyRun is one sender's candidate sequence during Assemble.
type assemblyRun struct {
	prio uint64 // head transaction's priority
	from types.Address
	txs  []*types.Transaction
}

// Assemble returns up to max transactions in block order without removing
// them (the miner calls MarkIncluded once the block actually mines).
//
// Order is content-deterministic: per sender, the queue's ascending-nonce
// prefix (contiguous when StrictNonce, the whole queue otherwise); across
// senders, runs sort by (head priority desc, sender asc) and are taken
// whole until max truncates the last one. Two pools holding the same
// transactions assemble the same sequence.
func (p *Pool) Assemble(max int) []*types.Transaction {
	if max <= 0 || p.Len() == 0 {
		return nil
	}
	var runs []assemblyRun
	for _, s := range p.shards {
		s.mu.Lock()
		for addr, q := range s.senders {
			if len(q.nonces) == 0 {
				continue
			}
			if p.cfg.StrictNonce && q.floor > 0 && q.nonces[0] != q.floor {
				continue // known gap at the front: the next expected nonce is missing
			}
			run := assemblyRun{from: addr}
			prev := q.nonces[0]
			for i, n := range q.nonces {
				if p.cfg.StrictNonce && i > 0 && n != prev+1 {
					break // park everything above the gap
				}
				run.txs = append(run.txs, q.txs[n])
				prev = n
			}
			run.prio = p.cfg.PriorityOf(run.txs[0])
			runs = append(runs, run)
		}
		s.mu.Unlock()
	}
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].prio != runs[j].prio {
			return runs[i].prio > runs[j].prio
		}
		return bytes.Compare(runs[i].from[:], runs[j].from[:]) < 0
	})
	out := make([]*types.Transaction, 0, max)
	for _, run := range runs {
		for _, tx := range run.txs {
			if len(out) == max {
				return out
			}
			out = append(out, tx)
		}
	}
	return out
}

// MarkIncluded removes assembled transactions and advances each sender's
// inclusion floor past them, so re-gossiped copies bounce off
// ErrNonceTooLow instead of re-entering the pool.
func (p *Pool) MarkIncluded(txs []*types.Transaction) {
	for _, tx := range txs {
		s := p.shardOf(tx.From)
		s.mu.Lock()
		if q := s.senders[tx.From]; q != nil {
			if _, queued := q.txs[tx.Nonce]; queued {
				delete(q.txs, tx.Nonce)
				q.removeNonce(tx.Nonce)
				s.size.Add(-1)
				p.size.Add(-1)
			}
			if tx.Nonce+1 > q.floor {
				q.floor = tx.Nonce + 1
			}
		}
		s.mu.Unlock()
	}
	p.occupancy.Set(float64(p.size.Load()))
}
