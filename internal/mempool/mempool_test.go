package mempool

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/nezha-dag/nezha/internal/crypto"
	"github.com/nezha-dag/nezha/internal/fail"
	"github.com/nezha-dag/nezha/internal/types"
)

// tx builds an unsigned transaction from numeric parts; gas doubles as
// the default priority.
func tx(sender, nonce, gas uint64) *types.Transaction {
	return &types.Transaction{
		From:  types.AddressFromUint64(sender),
		To:    types.AddressFromUint64(9999),
		Nonce: nonce,
		Value: 1,
		Gas:   gas,
	}
}

func mustAdmit(t *testing.T, p *Pool, txs ...*types.Transaction) {
	t.Helper()
	for _, x := range txs {
		if err := p.Admit(x); err != nil {
			t.Fatalf("admit %v: %v", x, err)
		}
	}
}

func nonces(txs []*types.Transaction) []uint64 {
	out := make([]uint64, len(txs))
	for i, x := range txs {
		out[i] = x.Nonce
	}
	return out
}

func TestAdmitAndAssembleBasic(t *testing.T) {
	p := New(Config{Tag: "t-basic"})
	mustAdmit(t, p, tx(1, 1, 10), tx(1, 2, 10), tx(2, 1, 20))
	if p.Len() != 3 {
		t.Fatalf("len = %d, want 3", p.Len())
	}
	got := p.Assemble(10)
	// Sender 2's run has head priority 20 > sender 1's 10.
	want := []*types.Transaction{tx(2, 1, 20), tx(1, 1, 10), tx(1, 2, 10)}
	if len(got) != len(want) {
		t.Fatalf("assembled %d txs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Hash() != want[i].Hash() {
			t.Fatalf("slot %d: got %v, want %v", i, got[i], want[i])
		}
	}
	// Assemble is a peek: nothing left the pool.
	if p.Len() != 3 {
		t.Fatalf("len after assemble = %d, want 3", p.Len())
	}
	p.MarkIncluded(got)
	if p.Len() != 0 {
		t.Fatalf("len after include = %d, want 0", p.Len())
	}
}

func TestDuplicateAndNonceFloor(t *testing.T) {
	p := New(Config{Tag: "t-dup"})
	mustAdmit(t, p, tx(1, 1, 10))
	if err := p.Admit(tx(1, 1, 10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: got %v, want ErrDuplicate", err)
	}
	p.MarkIncluded([]*types.Transaction{tx(1, 1, 10)})
	if got := p.Floor(types.AddressFromUint64(1)); got != 2 {
		t.Fatalf("floor = %d, want 2", got)
	}
	if err := p.Admit(tx(1, 1, 10)); !errors.Is(err, ErrNonceTooLow) {
		t.Fatalf("replay: got %v, want ErrNonceTooLow", err)
	}
}

func TestReplacementByFee(t *testing.T) {
	p := New(Config{Tag: "t-rbf"})
	mustAdmit(t, p, tx(1, 1, 10))
	// Equal priority is not a raise.
	if err := p.Admit(tx(1, 1, 10)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("same content: got %v, want ErrDuplicate", err)
	}
	lower := tx(1, 1, 5)
	if err := p.Admit(lower); !errors.Is(err, ErrUnderpriced) {
		t.Fatalf("lower priority: got %v, want ErrUnderpriced", err)
	}
	higher := tx(1, 1, 50)
	if err := p.Admit(higher); err != nil {
		t.Fatalf("replacement: %v", err)
	}
	if p.Len() != 1 {
		t.Fatalf("len = %d, want 1 (replaced in place)", p.Len())
	}
	got := p.Assemble(1)
	if len(got) != 1 || got[0].Hash() != higher.Hash() {
		t.Fatalf("assembled %v, want the replacement", got)
	}
}

func TestStrictNonceGapParksLaterNonces(t *testing.T) {
	p := New(Config{Tag: "t-gap", StrictNonce: true})
	mustAdmit(t, p, tx(1, 1, 10), tx(1, 2, 10), tx(1, 4, 10), tx(1, 5, 10))
	got := p.Assemble(10)
	if want := []uint64{1, 2}; fmt.Sprint(nonces(got)) != fmt.Sprint(want) {
		t.Fatalf("assembled nonces %v, want %v (gap at 3 parks 4,5)", nonces(got), want)
	}
	p.MarkIncluded(got)
	// Floor is now 3 and the queue holds {4,5}: the known front gap parks
	// the sender entirely.
	if got := p.Assemble(10); len(got) != 0 {
		t.Fatalf("assembled %v past a known front gap, want none", nonces(got))
	}
	// The missing nonce arrives; the full run resumes.
	mustAdmit(t, p, tx(1, 3, 10))
	got = p.Assemble(10)
	if want := []uint64{3, 4, 5}; fmt.Sprint(nonces(got)) != fmt.Sprint(want) {
		t.Fatalf("assembled nonces %v, want %v after gap fill", nonces(got), want)
	}
}

func TestSenderCap(t *testing.T) {
	p := New(Config{Tag: "t-scap", SenderCap: 2})
	mustAdmit(t, p, tx(1, 1, 10), tx(1, 2, 10))
	if err := p.Admit(tx(1, 3, 10)); !errors.Is(err, ErrSenderLimit) {
		t.Fatalf("over cap: got %v, want ErrSenderLimit", err)
	}
	// Another sender is unaffected.
	mustAdmit(t, p, tx(2, 1, 10))
}

func TestEvictionDeterminism(t *testing.T) {
	// One shard, capacity 4. The weakest tail by (priority, sender desc,
	// nonce desc) must be evicted regardless of admission order.
	build := func(order []*types.Transaction) *Pool {
		p := New(Config{Tag: "t-evict", Shards: 1, ShardCap: 4, SenderCap: 8})
		mustAdmit(t, p, order...)
		return p
	}
	a, b, c, d := tx(1, 1, 10), tx(1, 2, 5), tx(2, 1, 7), tx(3, 1, 9)
	incoming := tx(4, 1, 20)

	orders := [][]*types.Transaction{
		{a, b, c, d},
		{d, c, b, a},
		{c, a, d, b},
	}
	var want string
	for i, order := range orders {
		p := build(order)
		if err := p.Admit(incoming); err != nil {
			t.Fatalf("order %d: overflow admit: %v", i, err)
		}
		if p.Len() != 4 {
			t.Fatalf("order %d: len = %d, want 4", i, p.Len())
		}
		// Victim must be b: tails are b(prio 5), c(7), d(9) — a is not a
		// tail (sender 1's tail is nonce 2) — and b has the lowest priority.
		if p.PendingFor(types.AddressFromUint64(1)) != 1 {
			t.Fatalf("order %d: sender 1 kept %d txs, want 1 (tail evicted)",
				i, p.PendingFor(types.AddressFromUint64(1)))
		}
		got := fmt.Sprint(nonces(p.Assemble(10)))
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("order %d: assembly %s, want %s (admission order leaked)", i, got, want)
		}
	}

	// An incoming transaction weaker than every tail is itself rejected.
	p := build([]*types.Transaction{a, b, c, d})
	if err := p.Admit(tx(5, 1, 1)); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("weak overflow: got %v, want ErrPoolFull", err)
	}
}

func TestRateLimitRecovery(t *testing.T) {
	now := time.Unix(1000, 0)
	p := New(Config{
		Tag:   "t-rate",
		Rate:  1, // 1 tx/sec, burst 1
		Clock: func() time.Time { return now },
	})
	mustAdmit(t, p, tx(1, 1, 10))
	if err := p.Admit(tx(1, 2, 10)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst exceeded: got %v, want ErrRateLimited", err)
	}
	// Replacement of a queued nonce is not rate limited.
	if err := p.Admit(tx(1, 1, 99)); err != nil {
		t.Fatalf("replacement under rate pressure: %v", err)
	}
	// The bucket refills with time; admission recovers.
	now = now.Add(1500 * time.Millisecond)
	mustAdmit(t, p, tx(1, 2, 10))
	// Other senders have their own buckets.
	mustAdmit(t, p, tx(2, 1, 10))
}

func TestAssembleTruncationKeepsNoncePrefix(t *testing.T) {
	p := New(Config{Tag: "t-trunc", StrictNonce: true})
	mustAdmit(t, p, tx(1, 1, 10), tx(1, 2, 10), tx(1, 3, 10), tx(2, 1, 5))
	got := p.Assemble(2)
	if want := []uint64{1, 2}; fmt.Sprint(nonces(got)) != fmt.Sprint(want) {
		t.Fatalf("assembled %v, want prefix %v", nonces(got), want)
	}
}

func TestAdmitBatchVerifiesSignatures(t *testing.T) {
	p := New(Config{Tag: "t-sig", VerifySignatures: true, Workers: 4})
	txs := make([]*types.Transaction, 6)
	for i := range txs {
		key := crypto.KeyForAccount(uint64(i))
		txs[i] = &types.Transaction{
			From:  key.Address(),
			To:    types.AddressFromUint64(9999),
			Nonce: 1,
			Value: 1,
			Gas:   10,
		}
		key.SignTx(txs[i])
	}
	// Corrupt one signature.
	txs[3].Sig[40] ^= 0xff
	admitted, errs := p.AdmitBatch(txs)
	if admitted != 5 {
		t.Fatalf("admitted %d, want 5", admitted)
	}
	for i, err := range errs {
		if i == 3 {
			if !errors.Is(err, ErrBadSignature) {
				t.Fatalf("corrupt slot: got %v, want ErrBadSignature", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
	if err := p.Admit(&types.Transaction{From: types.AddressFromUint64(7), Nonce: 1, Gas: 1}); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("unsigned single admit: got %v, want ErrBadSignature", err)
	}
}

func TestAdmitFailpoint(t *testing.T) {
	defer fail.Reset()
	fail.Enable(fail.MempoolAdmit, fail.Spec{Mode: fail.ModeError})
	p := New(Config{Tag: "t-fp"})
	err := p.Admit(tx(1, 1, 10))
	if !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("armed admit: got %v, want ErrInjected", err)
	}
	fail.Reset()
	mustAdmit(t, p, tx(1, 1, 10))
}

func TestEvictFailpoint(t *testing.T) {
	defer fail.Reset()
	p := New(Config{Tag: "t-fpe", Shards: 1, ShardCap: 2, SenderCap: 8})
	mustAdmit(t, p, tx(1, 1, 10), tx(2, 1, 10))
	fail.Enable(fail.MempoolEvict, fail.Spec{Mode: fail.ModeError})
	err := p.Admit(tx(3, 1, 99))
	if !errors.Is(err, fail.ErrInjected) {
		t.Fatalf("armed evict: got %v, want ErrInjected", err)
	}
	fail.Reset()
	if err := p.Admit(tx(3, 1, 99)); err != nil {
		t.Fatalf("disarmed evict: %v", err)
	}
}

func TestConcurrentAdmitAssemble(t *testing.T) {
	p := New(Config{Tag: "t-conc", ShardCap: -1, SenderCap: -1})
	const senders = 8
	const perSender = 200
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s uint64) {
			defer wg.Done()
			for n := uint64(1); n <= perSender; n++ {
				if err := p.Admit(tx(s, n, 10+s)); err != nil {
					t.Errorf("sender %d nonce %d: %v", s, n, err)
					return
				}
			}
		}(uint64(s))
	}
	stop := make(chan struct{})
	var included int
	var miner sync.WaitGroup
	miner.Add(1)
	go func() {
		defer miner.Done()
		for {
			batch := p.Assemble(64)
			p.MarkIncluded(batch)
			included += len(batch)
			select {
			case <-stop:
				if len(batch) == 0 {
					return
				}
			default:
			}
		}
	}()
	wg.Wait()
	close(stop)
	miner.Wait()
	if total := included + p.Len(); total != senders*perSender {
		t.Fatalf("conservation: included %d + pending %d = %d, want %d",
			included, p.Len(), total, senders*perSender)
	}
}

func TestAssembleDeterministicAcrossPools(t *testing.T) {
	// Same multiset of admissions in different orders: identical assembly.
	txs := make([]*types.Transaction, 0, 30)
	for s := uint64(1); s <= 5; s++ {
		for n := uint64(1); n <= 6; n++ {
			txs = append(txs, tx(s, n, s*7%11))
		}
	}
	p1 := New(Config{Tag: "t-det1"})
	p2 := New(Config{Tag: "t-det2"})
	mustAdmit(t, p1, txs...)
	for i := len(txs) - 1; i >= 0; i-- {
		mustAdmit(t, p2, txs[i])
	}
	a1, a2 := p1.Assemble(100), p2.Assemble(100)
	if len(a1) != len(a2) {
		t.Fatalf("lengths differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Hash() != a2[i].Hash() {
			t.Fatalf("slot %d differs: %v vs %v", i, a1[i], a2[i])
		}
	}
}
