package fail

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

// TestAllNamesCoversRegistry parses names.go and asserts AllNames returns
// exactly the declared Name constants, once each. The crash-point sweep
// trusts AllNames as the complete site inventory; this keeps a newly
// registered constant from silently escaping the sweep.
func TestAllNamesCoversRegistry(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "names.go", nil, 0)
	if err != nil {
		t.Fatalf("parse names.go: %v", err)
	}
	declared := map[string]bool{}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "Name" {
				continue
			}
			for _, v := range vs.Values {
				lit, ok := v.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquote %s: %v", lit.Value, err)
				}
				declared[name] = true
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("found no Name constants in names.go")
	}

	listed := map[string]bool{}
	for _, n := range AllNames() {
		if listed[string(n)] {
			t.Errorf("AllNames lists %q twice", n)
		}
		listed[string(n)] = true
	}
	for name := range declared {
		if !listed[name] {
			t.Errorf("registered site %q missing from AllNames", name)
		}
	}
	for name := range listed {
		if !declared[name] {
			t.Errorf("AllNames lists %q, which is not a registered constant", name)
		}
	}
}
