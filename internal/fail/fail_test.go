package fail

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	if err := Hit("nothing/armed"); err != nil {
		t.Fatalf("disarmed hit returned %v", err)
	}
	if Drop("nothing/armed", "n1") {
		t.Fatal("disarmed drop fired")
	}
	if Armed() != 0 {
		t.Fatalf("armed = %d", Armed())
	}
}

func TestErrorInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable("io/write", Spec{Mode: ModeError})
	err := Hit("io/write")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// A wrapped custom error still matches ErrInjected and the cause.
	cause := errors.New("disk on fire")
	Enable("io/write", Spec{Mode: ModeError, Err: cause})
	err = Hit("io/write")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, cause) {
		t.Fatalf("wrapped err = %v", err)
	}
}

func TestTagScoping(t *testing.T) {
	Reset()
	defer Reset()
	Enable("store/apply", Spec{Mode: ModeError, Tag: "n2"})
	if err := HitTag("store/apply", "n1"); err != nil {
		t.Fatalf("wrong tag triggered: %v", err)
	}
	if err := HitTag("store/apply", "n2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching tag did not trigger: %v", err)
	}
	// Untagged spec matches every tag.
	Enable("store/apply", Spec{Mode: ModeError})
	if err := HitTag("store/apply", "anything"); !errors.Is(err, ErrInjected) {
		t.Fatalf("untagged spec did not match: %v", err)
	}
}

func TestAfterAndCount(t *testing.T) {
	Reset()
	defer Reset()
	Enable("wal/append", Spec{Mode: ModeError, After: 2, Count: 1})
	for i := 0; i < 2; i++ {
		if err := Hit("wal/append"); err != nil {
			t.Fatalf("hit %d triggered early: %v", i, err)
		}
	}
	if err := Hit("wal/append"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third hit did not trigger: %v", err)
	}
	// Count:1 disarmed the site.
	if Armed() != 0 {
		t.Fatalf("site still armed after count exhausted: %d", Armed())
	}
	if err := Hit("wal/append"); err != nil {
		t.Fatalf("disarmed site triggered: %v", err)
	}
}

func TestPanicIsCrash(t *testing.T) {
	Reset()
	defer Reset()
	Enable("node/persist", Spec{Mode: ModePanic, Tag: "n0"})
	defer func() {
		r := recover()
		if !IsCrash(r) {
			t.Fatalf("recovered %v, want Crash", r)
		}
		c := r.(Crash)
		if c.Name != "node/persist" || c.Tag != "n0" {
			t.Fatalf("crash = %+v", c)
		}
	}()
	_ = HitTag("node/persist", "n0")
	t.Fatal("panic did not fire")
}

func TestDelaySleeps(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p2p/stall", Spec{Mode: ModeDelay, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := Hit("p2p/stall"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay spec slept only %v", d)
	}
}

func TestDropDecision(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p2p/drop", Spec{Mode: ModeDrop, Tag: "n1", Count: 2})
	if !Drop("p2p/drop", "n1") {
		t.Fatal("matching drop did not fire")
	}
	if Drop("p2p/drop", "n2") {
		t.Fatal("mismatched tag dropped")
	}
	if !Drop("p2p/drop", "n1") {
		t.Fatal("second drop did not fire")
	}
	if Drop("p2p/drop", "n1") {
		t.Fatal("count budget not honored")
	}
	// A ModeDrop spec on a Hit-style site is a no-op, not an error.
	Enable("mixed/site", Spec{Mode: ModeDrop})
	if err := Hit("mixed/site"); err != nil {
		t.Fatalf("ModeDrop surfaced through Hit: %v", err)
	}
}

func TestProbIsSeedDeterministic(t *testing.T) {
	run := func() []bool {
		Reset()
		Seed(42)
		Enable("p2p/loss", Spec{Mode: ModeDrop, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Drop("p2p/loss", "")
		}
		Reset()
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", fired, len(a))
	}
}

func TestConcurrentHitsAreSafe(t *testing.T) {
	Reset()
	defer Reset()
	Enable("hot/site", Spec{Mode: ModeError, Prob: 0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1_000; i++ {
				_ = Hit("hot/site")
				_ = HitTag("hot/site", "t")
				_ = Drop("hot/site", "t")
			}
		}()
	}
	wg.Wait()
}

// BenchmarkDisarmedHit guards the substrate's core promise: a disarmed
// site is one atomic load. The root bench suite re-exports this as
// BenchmarkFailpointDisabled for the benchstat PR gate.
func BenchmarkDisarmedHit(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Hit("bench/disarmed"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDisarmedHitTag(b *testing.B) {
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := HitTag("bench/disarmed", "node-7"); err != nil {
			b.Fatal(err)
		}
	}
}
