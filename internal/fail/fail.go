// Package fail is the process-wide failpoint substrate: named injection
// sites threaded through the I/O-critical paths (kvstore, p2p, node) that
// tests and the chaos harness (internal/chaos) arm to simulate disk
// errors, crashes, network stalls, and message drops.
//
// The design borrows from pingcap/failpoint and the FreeBSD fail(9)
// facility, reduced to what a deterministic in-process cluster needs:
//
//   - A disarmed site costs one atomic load and a predictable branch —
//     cheap enough to leave in production builds (BenchmarkFailpointDisabled
//     in the root bench suite guards this).
//   - Armed sites are seed-deterministic: every probabilistic decision
//     draws from one package RNG reseeded via Seed, so a chaos run's fault
//     schedule replays from its seed.
//   - Sites are scoped by an optional tag (typically a node or store id),
//     so a multi-node in-process cluster can fail one node's disk while
//     its peers stay healthy.
//
// A site fires at most one spec; Enable replaces any previous spec for the
// same name. Triggers count across tags: After/Count budgets are per-site,
// not per-tag.
package fail

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/nezha-dag/nezha/internal/metrics"
)

// ErrInjected is the error returned by ModeError specs with a nil Err;
// injected errors wrap it either way, so callers (and tests) can detect
// injection with errors.Is.
var ErrInjected = errors.New("fail: injected error")

// Crash is the panic payload of a ModePanic trigger — the in-process
// stand-in for SIGKILL. Harnesses recover it (see IsCrash) and treat the
// node as dead; any other panic is a real bug and must keep unwinding.
type Crash struct {
	// Name is the failpoint that fired.
	Name string
	// Tag is the scope the hit carried, if any.
	Tag string
}

// String implements fmt.Stringer.
func (c Crash) String() string {
	if c.Tag == "" {
		return "fail: injected crash at " + c.Name
	}
	return "fail: injected crash at " + c.Name + "@" + c.Tag
}

// IsCrash reports whether a recovered panic value is an injected crash.
func IsCrash(r any) bool {
	_, ok := r.(Crash)
	return ok
}

// Mode selects what an armed failpoint does when it triggers.
type Mode int

const (
	// ModeError makes the site return Spec.Err (ErrInjected when nil).
	ModeError Mode = iota + 1
	// ModePanic makes the site panic with a Crash payload — the simulated
	// process kill.
	ModePanic
	// ModeDelay makes the site sleep for Spec.Delay before continuing.
	ModeDelay
	// ModeDrop makes Drop-style sites report "discard this item"; Hit-style
	// sites treat it like a no-op.
	ModeDrop
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeDrop:
		return "drop"
	default:
		return fmt.Sprintf("mode_%d", int(m))
	}
}

// Spec arms one failpoint.
type Spec struct {
	// Mode is what the site does when it triggers. Required.
	Mode Mode
	// Tag restricts the spec to hits carrying the same tag (a node or
	// store id). Empty matches every hit.
	Tag string
	// Err is returned by ModeError triggers; nil means ErrInjected. Non-nil
	// errors are wrapped so errors.Is(err, ErrInjected) still holds.
	Err error
	// Delay is the ModeDelay sleep.
	Delay time.Duration
	// Prob triggers the spec with this probability per matching hit; 0
	// means always (the common deterministic case).
	Prob float64
	// After skips the first After matching hits before the spec may
	// trigger ("fail the third flush").
	After int
	// Count disarms the spec after it has triggered Count times; 0 means
	// unlimited.
	Count int
}

// point is one armed site.
type point struct {
	spec  Spec
	hits  int // matching hits seen
	fired int // times triggered
}

var (
	// armed is the number of enabled specs — the fast-path gate. Disarmed
	// processes (all production runs) pay exactly this one atomic load.
	armed atomic.Int32

	mu     sync.Mutex
	points map[Name]*point
	rng    = rand.New(rand.NewSource(1))

	mTriggers = metrics.Default().Counter("nezha_fail_triggers_total",
		"Failpoint triggers fired (all sites).")
)

// Enable arms the named site, replacing any existing spec for it.
func Enable(name Name, s Spec) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[Name]*point)
	}
	if _, exists := points[name]; !exists {
		armed.Add(1)
	}
	points[name] = &point{spec: s}
}

// Disable disarms the named site; unknown names are a no-op.
func Disable(name Name) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := points[name]; exists {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every site. Tests and the chaos harness call it between
// runs so no spec leaks across scenarios.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = nil
}

// Seed reseeds the probabilistic trigger RNG; a chaos run seeds it
// alongside its other generators so Prob-based specs replay.
func Seed(seed int64) {
	mu.Lock()
	defer mu.Unlock()
	rng = rand.New(rand.NewSource(seed))
}

// Armed reports how many sites are currently enabled (test support).
func Armed() int { return int(armed.Load()) }

// Hit evaluates the named site with no tag. Disarmed sites return nil at
// the cost of one atomic load. Armed sites may return an injected error,
// panic with a Crash, or sleep, per their Spec.
func Hit(name Name) error {
	if armed.Load() == 0 {
		return nil
	}
	return eval(name, "", false)
}

// HitTag is Hit with a scope tag (a node or store id) matched against
// Spec.Tag.
func HitTag(name Name, tag string) error {
	if armed.Load() == 0 {
		return nil
	}
	return eval(name, tag, false)
}

// Drop evaluates a drop-style site: true means "discard this item" (a
// message, a write). ModeDrop and ModePanic/ModeError specs on a Drop site
// all behave as a drop decision — Drop never returns an error; ModeDelay
// sleeps and reports false.
func Drop(name Name, tag string) bool {
	if armed.Load() == 0 {
		return false
	}
	return eval(name, tag, true) != nil
}

// errDropped is the internal sentinel eval returns for drop decisions.
var errDropped = errors.New("fail: dropped")

// eval runs the slow path: match, count, trigger. Sleeps happen outside
// the package lock so a delay spec cannot stall unrelated sites.
func eval(name Name, tag string, dropSite bool) error {
	mu.Lock()
	p, ok := points[name]
	if !ok || (p.spec.Tag != "" && p.spec.Tag != tag) {
		mu.Unlock()
		return nil
	}
	p.hits++
	if p.hits <= p.spec.After {
		mu.Unlock()
		return nil
	}
	if p.spec.Prob > 0 && rng.Float64() >= p.spec.Prob {
		mu.Unlock()
		return nil
	}
	spec := p.spec
	p.fired++
	if spec.Count > 0 && p.fired >= spec.Count {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()

	mTriggers.Inc()
	switch spec.Mode {
	case ModePanic:
		panic(Crash{Name: string(name), Tag: tag})
	case ModeDelay:
		time.Sleep(spec.Delay)
		return nil
	case ModeDrop:
		if dropSite {
			return errDropped
		}
		return nil
	case ModeError:
		fallthrough
	default:
		if spec.Err != nil {
			return fmt.Errorf("%w: %s: %w", ErrInjected, string(name), spec.Err)
		}
		return fmt.Errorf("%w: %s", ErrInjected, string(name))
	}
}
