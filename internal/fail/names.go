package fail

// Name identifies a failpoint site. Sites are named "<package>/<site>" in
// lower-case (hyphens inside a segment), and every name used anywhere in
// the tree must be one of the constants below: nezha-vet's failpoint
// analyzer (internal/lint/failpoint) rejects call sites whose name is not
// a registered constant, duplicate registrations, and Name constants
// declared outside this file. Keeping the full inventory in one block is
// the point — it is the reviewable surface of "what can chaos break".
type Name string

// The registry. One constant per site, grouped by the package that hits
// it. Add new sites here first; the vet suite fails the build otherwise.
const (
	// BenchDisarmed is hit only by the root benchmark suite to measure the
	// disarmed fast path (one atomic load).
	BenchDisarmed Name = "bench/disarmed"

	// kvstore: the durability path (internal/kvstore).
	KVWALAppend Name = "kvstore/wal-append" // WAL record append, before the buffered write
	KVWALSync   Name = "kvstore/wal-sync"   // WAL fsync
	KVWALReplay Name = "kvstore/wal-replay" // WAL record replay during recovery, per intact record
	KVApply     Name = "kvstore/apply"      // memtable apply of a committed batch
	KVFlush     Name = "kvstore/flush"      // memtable -> SSTable flush
	KVCompact   Name = "kvstore/compact"    // SSTable compaction

	// node: epoch pipeline handoffs and the persistence path (internal/node).
	NodeSubmit        Name = "node/submit"         // transaction submission
	NodePersist       Name = "node/persist"        // epoch persistence, before the store write
	NodePersistDone   Name = "node/persist-done"   // epoch persistence, after the commit point
	NodeRestore       Name = "node/restore"        // persisted-state restore at node construction
	NodeDivergeRoot   Name = "node/diverge-root"   // corrupt the reported epoch root (journal forensics meta-tests)
	NodeStageValidate Name = "node/stage-validate" // handoff into the validate stage
	NodeStageExecute  Name = "node/stage-execute"  // handoff into the execute stage
	NodeStageSchedule Name = "node/stage-schedule" // handoff into the schedule stage
	NodeStageCommit   Name = "node/stage-commit"   // handoff into the commit stage
	NodeStageSerial   Name = "node/stage-serial"   // handoff into the serial-baseline stage
	NodeStagePrefetch Name = "node/stage-prefetch" // handoff into the read-set prefetch stage

	// p2p: the in-process network fabric (internal/p2p).
	P2PDrop  Name = "p2p/drop"  // message delivery drop decision
	P2PStall Name = "p2p/stall" // delivery stall (delay specs)

	// mempool: the ingestion front end (internal/mempool).
	MempoolAdmit Name = "mempool/admit" // transaction admission, before any pool mutation
	MempoolEvict Name = "mempool/evict" // capacity eviction decision on a full shard
)

// AllNames returns every registered failpoint name in registry order. The
// crash-point sweep (internal/chaos) iterates it so a newly registered
// site is swept — or explicitly exempted with a reason — automatically;
// TestAllNamesCoversRegistry keeps this list in sync with the constants
// above.
func AllNames() []Name {
	return []Name{
		BenchDisarmed,
		KVWALAppend,
		KVWALSync,
		KVWALReplay,
		KVApply,
		KVFlush,
		KVCompact,
		NodeSubmit,
		NodePersist,
		NodePersistDone,
		NodeRestore,
		NodeDivergeRoot,
		NodeStageValidate,
		NodeStageExecute,
		NodeStageSchedule,
		NodeStageCommit,
		NodeStageSerial,
		NodeStagePrefetch,
		P2PDrop,
		P2PStall,
		MempoolAdmit,
		MempoolEvict,
	}
}
