package nezha_test

import (
	"testing"

	nezha "github.com/nezha-dag/nezha"
)

// sim builds a SimResult through the public API only.
func sim(id nezha.TxID, reads, writes []uint64) *nezha.SimResult {
	s := &nezha.SimResult{Tx: &nezha.Transaction{ID: id}}
	for _, k := range reads {
		s.Reads = append(s.Reads, nezha.ReadEntry{Key: nezha.KeyFromUint64(k)})
	}
	for _, k := range writes {
		s.Writes = append(s.Writes, nezha.WriteEntry{Key: nezha.KeyFromUint64(k), Value: []byte{byte(id)}})
	}
	return s
}

func TestPublicAPIQuickstart(t *testing.T) {
	sims := []*nezha.SimResult{
		sim(0, []uint64{1}, []uint64{2}),
		sim(1, []uint64{3}, []uint64{4}),
		sim(2, []uint64{2}, []uint64{3}), // reads what tx 0 writes
	}
	sched := nezha.NewScheduler()
	if sched.Name() != "nezha" {
		t.Fatalf("name = %q", sched.Name())
	}
	schedule, breakdown, err := sched.Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if breakdown.Total() <= 0 {
		t.Fatal("no phase latency recorded")
	}
	if schedule.CommittedCount()+schedule.AbortedCount() != 3 {
		t.Fatal("transactions lost")
	}
	if err := nezha.Verify(nil, sims, schedule); err != nil {
		t.Fatal(err)
	}
	// tx 2 read key 2 from the snapshot, so it must precede tx 0's write.
	if schedule.IsCommitted(0) && schedule.IsCommitted(2) && schedule.Seqs[2] >= schedule.Seqs[0] {
		t.Fatalf("reader (seq %d) does not precede writer (seq %d)", schedule.Seqs[2], schedule.Seqs[0])
	}
}

func TestPublicCGBaseline(t *testing.T) {
	sims := []*nezha.SimResult{
		sim(0, []uint64{1}, []uint64{2}),
		sim(1, []uint64{2}, []uint64{1}), // rw cycle with tx 0
	}
	schedule, _, err := nezha.NewCGScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if schedule.AbortedCount() != 1 {
		t.Fatalf("cycle not broken: %+v", schedule.Aborted)
	}
	if schedule.Aborted[0].Reason != nezha.AbortCycle {
		t.Fatalf("reason = %v", schedule.Aborted[0].Reason)
	}
	if err := nezha.Verify(nil, sims, schedule); err != nil {
		t.Fatal(err)
	}
}

func TestPublicConfigSurface(t *testing.T) {
	if _, err := nezha.NewSchedulerWithConfig(nezha.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	s, err := nezha.NewSchedulerWithConfig(nezha.Config{Reorder: false, Heuristic: nezha.RankMinSubscript})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Schedule(nil); err != nil {
		t.Fatal(err)
	}
	if nezha.NewCGSchedulerWithBudget(0, 0) == nil {
		t.Fatal("budget constructor returned nil")
	}
}

func TestPublicOCCBaseline(t *testing.T) {
	sims := []*nezha.SimResult{
		sim(0, nil, []uint64{1}),
		sim(1, []uint64{1}, []uint64{2}), // stale read of key 1: aborts
	}
	schedule, _, err := nezha.NewOCCScheduler().Schedule(sims)
	if err != nil {
		t.Fatal(err)
	}
	if !schedule.IsCommitted(0) || schedule.IsCommitted(1) {
		t.Fatalf("OCC outcome wrong: %+v", schedule.Seqs)
	}
	if err := nezha.Verify(nil, sims, schedule); err != nil {
		t.Fatal(err)
	}
}
